//! `poneglyph-serve` — run a multi-database proving service over TCP.
//!
//! ```sh
//! cargo run --release -p poneglyph-service --bin poneglyph-serve -- \
//!     [--port 7117] [--workers 4] [--prover-threads 0] [--cache 64] \
//!     [--cache-mb 64] [--k 12] [--duration SECS] [--append-every SECS]
//! ```
//!
//! `--prover-threads N` caps how many threads a *single* proof may fan out
//! across (0 = auto-detect). Trade it against `--workers`: more workers ×
//! fewer threads maximizes throughput under concurrent load; fewer
//! workers × more threads minimizes cold latency for a lone query.
//!
//! Hosts two small built-in demo databases (the quickstart's employee
//! table — the default — and an orders table) so the service is drivable
//! out of the box; a real deployment attaches its own tables. Prints each
//! database digest a client would check against the commitment registry,
//! then serves until shut down.
//!
//! `--append-every SECS` exercises the v3 mutation path: a background
//! thread appends one synthetic order row to the orders lineage every
//! interval, logging each homomorphic commitment update and the successor
//! digest clients should requery against.
//!
//! Shutdown: send `quit` on stdin, or pass `--duration SECS` for a timed
//! run; either path reports the per-database serving counters. With no
//! usable stdin (daemon/background deployment) the server runs until
//! killed.

use poneglyph_pcs::IpaParams;
use poneglyph_service::{digest_hex, ProvingService, ServiceConfig, ServiceServer};
use poneglyph_sql::{ColumnType, Database, Schema, Table};
use std::sync::Arc;

fn employees_database() -> Database {
    let mut db = Database::new();
    let mut employees = Table::empty(Schema::new(&[
        ("emp_id", ColumnType::Int),
        ("dept", ColumnType::Int),
        ("salary", ColumnType::Decimal),
    ]));
    for (id, dept, salary_cents) in [
        (1, 10, 520_000),
        (2, 10, 610_000),
        (3, 20, 470_000),
        (4, 20, 880_000),
        (5, 20, 730_000),
        (6, 30, 910_000),
    ] {
        employees.push_row(&[id, dept, salary_cents]);
    }
    db.add_table("employees", employees);
    db
}

fn orders_database() -> Database {
    let mut db = Database::new();
    let mut orders = Table::empty(Schema::new(&[
        ("order_id", ColumnType::Int),
        ("region", ColumnType::Int),
        ("amount", ColumnType::Decimal),
    ]));
    for i in 0..16i64 {
        orders.push_row(&[i + 1, i % 4, 10_000 + 731 * i]);
    }
    db.add_table("orders", orders);
    db
}

/// Parse `--name value`; missing flag → default, unparseable value →
/// error exit (silent fallback would bind the wrong port / pool size).
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(v)) => v,
            _ => {
                eprintln!("error: {name} needs a valid value");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: poneglyph-serve [--port N] [--workers N] [--prover-threads N] \
             [--cache N] [--cache-mb N] [--k N] [--duration SECS] [--append-every SECS]"
        );
        return;
    }
    let port: u16 = parse_flag(&args, "--port", 7117);
    let workers: usize = parse_flag(&args, "--workers", 2);
    let prover_threads: usize = parse_flag(&args, "--prover-threads", 0);
    let cache: usize = parse_flag(&args, "--cache", 64);
    let cache_mb: usize = parse_flag(&args, "--cache-mb", 64);
    let k: u32 = parse_flag(&args, "--k", 12);
    let duration: u64 = parse_flag(&args, "--duration", 0);
    let append_every: u64 = parse_flag(&args, "--append-every", 0);

    eprintln!("deriving public parameters (k = {k}, no trusted setup)...");
    let params = IpaParams::setup(k);
    let service = Arc::new(ProvingService::empty(
        params,
        ServiceConfig {
            workers,
            prover_threads,
            cache_capacity: cache,
            cache_bytes: cache_mb << 20,
            ..ServiceConfig::default()
        },
    ));
    eprintln!(
        "per-proof thread budget: {} (from --prover-threads {prover_threads}; 0 = auto)",
        service.prover_parallelism().threads()
    );
    let d_employees = service.attach_with_pks(employees_database(), &[("employees", "emp_id")]);
    let d_orders = service.attach_with_pks(orders_database(), &[("orders", "order_id")]);
    eprintln!(
        "hosting 2 databases:\n  employees (default): {}\n  orders:              {}",
        digest_hex(&d_employees[..16]),
        digest_hex(&d_orders[..16]),
    );

    let server =
        ServiceServer::spawn(Arc::clone(&service), ("127.0.0.1", port)).expect("bind service port");
    eprintln!(
        "serving protocol v3 on {} with {workers} prover worker(s); \
         'quit' or stdin EOF (or --duration) to stop",
        server.local_addr()
    );

    if append_every > 0 {
        // Exercise the mutation path: grow the orders lineage by one row
        // per interval. The thread tracks the lineage's moving digest; it
        // is detached and dies with the process.
        let svc = Arc::clone(&service);
        std::thread::Builder::new()
            .name("poneglyph-append".into())
            .spawn(move || {
                let mut digest = d_orders;
                let mut next_id = 17i64;
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(append_every));
                    let row = vec![next_id, next_id % 4, 10_000 + 731 * next_id];
                    match svc.append_rows(&digest, "orders", vec![row]) {
                        Ok(stats) => {
                            eprintln!(
                                "append: orders +1 row -> digest {} (epoch {}, \
                                 commitment update {:?}, {} cached proof(s) invalidated)",
                                digest_hex(&stats.new_digest[..16]),
                                stats.epoch,
                                stats.commit_update,
                                stats.entries_invalidated,
                            );
                            digest = stats.new_digest;
                            next_id += 1;
                        }
                        Err(e) => {
                            // The lineage moved under us (a TCP client
                            // appended, or the db was re-attached):
                            // re-resolve the digest currently hosting an
                            // orders table and carry on from its row count.
                            let followed = svc.digests().into_iter().find_map(|d| {
                                let shape = svc.shape_of(&d)?;
                                let rows = shape.table("orders")?.len();
                                Some((d, rows))
                            });
                            match followed {
                                Some((d, rows)) => {
                                    eprintln!(
                                        "append target moved ({e}); following the lineage \
                                         to {}",
                                        digest_hex(&d[..16])
                                    );
                                    digest = d;
                                    next_id = rows as i64 + 1;
                                }
                                None => {
                                    eprintln!(
                                        "append failed ({e}) and no orders table is \
                                         hosted; stopping the append loop"
                                    );
                                    break;
                                }
                            }
                        }
                    }
                }
            })
            .expect("spawn append thread");
    }

    if duration > 0 {
        std::thread::sleep(std::time::Duration::from_secs(duration));
    } else {
        // Serve until the operator types `quit`. Immediate EOF (stdin is
        // /dev/null or closed — daemon/background deployment) must NOT
        // shut the server down: fall back to serving until killed, like a
        // daemon. Only an explicit `quit` line reaches the shutdown log.
        let mut saw_input = false;
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) if saw_input => break, // console closed after use
                Ok(0) | Err(_) => {
                    // No console at all: park forever (killed externally).
                    loop {
                        std::thread::park();
                    }
                }
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => saw_input = true,
            }
        }
    }

    server.stop();
    let stats = service.stats();
    eprintln!(
        "shutdown: {} proof(s) generated, {} cache hit(s), {} cache miss(es); \
         {} worker(s) x {} prover thread(s)",
        stats.proofs_generated, stats.cache_hits, stats.cache_misses, workers, stats.prover_threads
    );
    if stats.mutations > 0 {
        eprintln!(
            "  {} append batch(es) applied, {} row(s) appended",
            stats.mutations, stats.rows_appended
        );
    }
    for db in &stats.databases {
        eprintln!(
            "  db {} (epoch {}): {} proven, {} cache hit(s), {} in-flight dedup(s), \
             {} cached proof(s)",
            digest_hex(&db.digest[..8]),
            db.epoch,
            db.proofs_generated,
            db.cache_hits,
            db.inflight_dedups,
            db.cached_proofs
        );
    }
}
