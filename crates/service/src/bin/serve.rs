//! `poneglyph-serve` — run a proving service over TCP.
//!
//! ```sh
//! cargo run --release -p poneglyph-service --bin poneglyph-serve -- \
//!     [--port 7117] [--workers 4] [--cache 64] [--k 12]
//! ```
//!
//! Hosts a small built-in demo database (the quickstart's employee table)
//! so the service is drivable out of the box; a real deployment constructs
//! [`ProvingService`] with its own tables. Prints the database digest a
//! client would check against the commitment registry, then serves until
//! killed.

use poneglyph_pcs::IpaParams;
use poneglyph_service::{ProvingService, ServiceConfig, ServiceServer};
use poneglyph_sql::{ColumnType, Database, Schema, Table};
use std::sync::Arc;

fn demo_database() -> Database {
    let mut db = Database::new();
    let mut employees = Table::empty(Schema::new(&[
        ("emp_id", ColumnType::Int),
        ("dept", ColumnType::Int),
        ("salary", ColumnType::Decimal),
    ]));
    for (id, dept, salary_cents) in [
        (1, 10, 520_000),
        (2, 10, 610_000),
        (3, 20, 470_000),
        (4, 20, 880_000),
        (5, 20, 730_000),
        (6, 30, 910_000),
    ] {
        employees.push_row(&[id, dept, salary_cents]);
    }
    db.add_table("employees", employees);
    db
}

/// Parse `--name value`; missing flag → default, unparseable value →
/// error exit (silent fallback would bind the wrong port / pool size).
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(v)) => v,
            _ => {
                eprintln!("error: {name} needs a valid value");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: poneglyph-serve [--port N] [--workers N] [--cache N] [--k N]");
        return;
    }
    let port: u16 = parse_flag(&args, "--port", 7117);
    let workers: usize = parse_flag(&args, "--workers", 2);
    let cache: usize = parse_flag(&args, "--cache", 64);
    let k: u32 = parse_flag(&args, "--k", 12);

    eprintln!("deriving public parameters (k = {k}, no trusted setup)...");
    let params = IpaParams::setup(k);
    let db = demo_database();
    let service = Arc::new(ProvingService::new(
        params,
        db,
        ServiceConfig {
            workers,
            cache_capacity: cache,
            ..ServiceConfig::default()
        },
    ));
    let digest = service.digest();
    eprintln!("database digest: {}", hex(&digest[..16]));

    let server = ServiceServer::spawn(service, ("127.0.0.1", port)).expect("bind service port");
    eprintln!(
        "serving on {} with {workers} prover worker(s); ctrl-c to stop",
        server.local_addr()
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
