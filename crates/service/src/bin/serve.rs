//! `poneglyph-serve` — run a multi-database proving service over TCP.
//!
//! ```sh
//! cargo run --release -p poneglyph-service --bin poneglyph-serve -- \
//!     [--port 7117] [--workers 4] [--prover-threads 0] [--cache 64] \
//!     [--cache-mb 64] [--k 12] [--duration SECS] [--append-every SECS] \
//!     [--metrics-port N]
//! ```
//!
//! `--prover-threads N` caps how many threads a *single* proof may fan out
//! across (0 = auto-detect). Trade it against `--workers`: more workers ×
//! fewer threads maximizes throughput under concurrent load; fewer
//! workers × more threads minimizes cold latency for a lone query.
//!
//! Hosts two small built-in demo databases (the quickstart's employee
//! table — the default — and an orders table) so the service is drivable
//! out of the box; a real deployment attaches its own tables. Prints each
//! database digest a client would check against the commitment registry,
//! then serves until shut down.
//!
//! `--append-every SECS` exercises the v3 mutation path: a background
//! thread appends one synthetic order row to the orders lineage every
//! interval, logging each homomorphic commitment update and the successor
//! digest clients should requery against.
//!
//! `--metrics-port N` additionally binds `127.0.0.1:N` and answers
//! `GET /metrics` with the Prometheus text exposition of the process
//! metrics registry — the same snapshot the wire protocol's `REQ_METRICS`
//! frame returns. Logging is leveled and timestamped; filter with
//! `PONEGLYPH_LOG=error|warn|info|debug|off` (default `info`).
//!
//! Shutdown: send `quit` on stdin, or pass `--duration SECS` for a timed
//! run; either path reports the per-database serving counters and the
//! slowest requests from the in-memory slow-query ring. With no usable
//! stdin (daemon/background deployment) the server runs until killed.

use poneglyph_obs::{log_error, log_info, log_warn};
use poneglyph_pcs::IpaParams;
use poneglyph_service::{digest_hex, ProvingService, ServiceConfig, ServiceServer};
use poneglyph_sql::{ColumnType, Database, Schema, Table};
use std::sync::Arc;

fn employees_database() -> Database {
    let mut db = Database::new();
    let mut employees = Table::empty(Schema::new(&[
        ("emp_id", ColumnType::Int),
        ("dept", ColumnType::Int),
        ("salary", ColumnType::Decimal),
    ]));
    for (id, dept, salary_cents) in [
        (1, 10, 520_000),
        (2, 10, 610_000),
        (3, 20, 470_000),
        (4, 20, 880_000),
        (5, 20, 730_000),
        (6, 30, 910_000),
    ] {
        employees.push_row(&[id, dept, salary_cents]);
    }
    db.add_table("employees", employees);
    db
}

fn orders_database() -> Database {
    let mut db = Database::new();
    let mut orders = Table::empty(Schema::new(&[
        ("order_id", ColumnType::Int),
        ("region", ColumnType::Int),
        ("amount", ColumnType::Decimal),
    ]));
    for i in 0..16i64 {
        orders.push_row(&[i + 1, i % 4, 10_000 + 731 * i]);
    }
    db.add_table("orders", orders);
    db
}

/// Parse `--name value`; missing flag → default, unparseable value →
/// error exit (silent fallback would bind the wrong port / pool size).
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(v)) => v,
            _ => {
                log_error!("{name} needs a valid value");
                std::process::exit(2);
            }
        },
    }
}

/// Report the slowest requests retained by the in-memory slow-query ring,
/// with each request's per-stage span breakdown.
fn report_slowest(n: usize) {
    let slowest = poneglyph_obs::ring().slowest(n);
    if slowest.is_empty() {
        return;
    }
    log_info!(
        "slowest {} request(s) of the last {}:",
        slowest.len(),
        poneglyph_obs::ring().len()
    );
    for rec in &slowest {
        let stages: Vec<String> = rec
            .stages
            .iter()
            .map(|(name, nanos)| format!("{name} {:.1}ms", *nanos as f64 / 1e6))
            .collect();
        log_info!(
            "  #{} {} {:.1}ms{}{}",
            rec.id,
            rec.label,
            rec.total_nanos as f64 / 1e6,
            if rec.cache_hit { " (cache hit)" } else { "" },
            if stages.is_empty() {
                String::new()
            } else {
                format!(" [{}]", stages.join(", "))
            }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: poneglyph-serve [--port N] [--workers N] [--prover-threads N] \
             [--cache N] [--cache-mb N] [--k N] [--duration SECS] [--append-every SECS] \
             [--metrics-port N]"
        );
        return;
    }
    let port: u16 = parse_flag(&args, "--port", 7117);
    let workers: usize = parse_flag(&args, "--workers", 2);
    let prover_threads: usize = parse_flag(&args, "--prover-threads", 0);
    let cache: usize = parse_flag(&args, "--cache", 64);
    let cache_mb: usize = parse_flag(&args, "--cache-mb", 64);
    let k: u32 = parse_flag(&args, "--k", 12);
    let duration: u64 = parse_flag(&args, "--duration", 0);
    let append_every: u64 = parse_flag(&args, "--append-every", 0);
    let metrics_port: u16 = parse_flag(&args, "--metrics-port", 0);

    log_info!("deriving public parameters (k = {k}, no trusted setup)...");
    let params = IpaParams::setup(k);
    let service = Arc::new(ProvingService::empty(
        params,
        ServiceConfig {
            workers,
            prover_threads,
            cache_capacity: cache,
            cache_bytes: cache_mb << 20,
            ..ServiceConfig::default()
        },
    ));
    log_info!(
        "per-proof thread budget: {} (from --prover-threads {prover_threads}; 0 = auto)",
        service.prover_parallelism().threads()
    );
    let d_employees = service.attach_with_pks(employees_database(), &[("employees", "emp_id")]);
    let d_orders = service.attach_with_pks(orders_database(), &[("orders", "order_id")]);
    log_info!(
        "hosting 2 databases: employees (default) {}, orders {}",
        digest_hex(&d_employees[..16]),
        digest_hex(&d_orders[..16]),
    );

    let server =
        ServiceServer::spawn(Arc::clone(&service), ("127.0.0.1", port)).expect("bind service port");
    log_info!(
        "serving protocol v4 on {} with {workers} prover worker(s); \
         'quit' or stdin EOF (or --duration) to stop",
        server.local_addr()
    );

    // The HTTP scrape endpoint is optional; the wire protocol's
    // REQ_METRICS frame serves the same snapshot either way.
    let metrics_server = if metrics_port > 0 {
        let svc = Arc::clone(&service);
        match poneglyph_obs::http::MetricsHttpServer::spawn(
            ("127.0.0.1", metrics_port),
            move || svc.metrics_text(),
        ) {
            Ok(http) => {
                log_info!("metrics: GET http://{}/metrics", http.local_addr());
                Some(http)
            }
            Err(e) => {
                log_warn!("could not bind metrics port {metrics_port}: {e}; continuing without");
                None
            }
        }
    } else {
        None
    };

    if append_every > 0 {
        // Exercise the mutation path: grow the orders lineage by one row
        // per interval. The thread tracks the lineage's moving digest; it
        // is detached and dies with the process.
        let svc = Arc::clone(&service);
        std::thread::Builder::new()
            .name("poneglyph-append".into())
            .spawn(move || {
                let mut digest = d_orders;
                let mut next_id = 17i64;
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(append_every));
                    let row = vec![next_id, next_id % 4, 10_000 + 731 * next_id];
                    match svc.append_rows(&digest, "orders", vec![row]) {
                        Ok(stats) => {
                            log_info!(
                                "append: orders +1 row -> digest {} (epoch {}, \
                                 commitment update {:?}, {} cached proof(s) invalidated)",
                                digest_hex(&stats.new_digest[..16]),
                                stats.epoch,
                                stats.commit_update,
                                stats.entries_invalidated,
                            );
                            digest = stats.new_digest;
                            next_id += 1;
                        }
                        Err(e) => {
                            // The lineage moved under us (a TCP client
                            // appended, or the db was re-attached):
                            // re-resolve the digest currently hosting an
                            // orders table and carry on from its row count.
                            let followed = svc.digests().into_iter().find_map(|d| {
                                let shape = svc.shape_of(&d)?;
                                let rows = shape.table("orders")?.len();
                                Some((d, rows))
                            });
                            match followed {
                                Some((d, rows)) => {
                                    log_warn!(
                                        "append target moved ({e}); following the lineage \
                                         to {}",
                                        digest_hex(&d[..16])
                                    );
                                    digest = d;
                                    next_id = rows as i64 + 1;
                                }
                                None => {
                                    log_error!(
                                        "append failed ({e}) and no orders table is \
                                         hosted; stopping the append loop"
                                    );
                                    break;
                                }
                            }
                        }
                    }
                }
            })
            .expect("spawn append thread");
    }

    if duration > 0 {
        std::thread::sleep(std::time::Duration::from_secs(duration));
    } else {
        // Serve until the operator types `quit`. Immediate EOF (stdin is
        // /dev/null or closed — daemon/background deployment) must NOT
        // shut the server down: fall back to serving until killed, like a
        // daemon. Only an explicit `quit` line reaches the shutdown log.
        let mut saw_input = false;
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) if saw_input => break, // console closed after use
                Ok(0) | Err(_) => {
                    // No console at all: park forever (killed externally).
                    loop {
                        std::thread::park();
                    }
                }
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => saw_input = true,
            }
        }
    }

    server.stop();
    if let Some(http) = metrics_server {
        http.stop();
    }
    let stats = service.stats();
    log_info!(
        "shutdown: {} proof(s) generated, {} cache hit(s), {} cache miss(es); \
         {} worker(s) x {} prover thread(s)",
        stats.proofs_generated,
        stats.cache_hits,
        stats.cache_misses,
        workers,
        stats.prover_threads
    );
    if stats.mutations > 0 {
        log_info!(
            "  {} append batch(es) applied, {} row(s) appended",
            stats.mutations,
            stats.rows_appended
        );
    }
    for db in &stats.databases {
        log_info!(
            "  db {} (epoch {}): {} proven, {} cache hit(s), {} in-flight dedup(s), \
             {} cached proof(s)",
            digest_hex(&db.digest[..8]),
            db.epoch,
            db.proofs_generated,
            db.cache_hits,
            db.inflight_dedups,
            db.cached_proofs
        );
    }
    report_slowest(5);
}
