//! The proving service: a long-lived prover answering a stream of queries
//! against any number of committed databases.
//!
//! This is the paper's Figure 2 deployment model as a running system: the
//! service hosts a digest-addressed [`DatabaseRegistry`] of committed
//! private [`Database`]s (each wrapped in a key-caching
//! [`ProverSession`](poneglyph_core::ProverSession)), accepts planned
//! queries — or raw SQL text, planned server-side — through a *bounded*
//! job queue, proves them on a pool of worker threads, and serves repeated
//! queries from an LRU proof cache keyed by `(database digest, plan
//! fingerprint)`. Identical queries in flight at the same time are
//! deduplicated: the second waits for the first proof instead of proving
//! again.

use crate::cache::LruCache;
use crate::registry::{digest_hex, DatabaseRegistry, DbEntry};
use poneglyph_core::{AppliedDelta, DeltaLog, Parallelism, ProverSession, QueryResponse, RowBatch};
use poneglyph_obs as obs;
use poneglyph_pcs::IpaParams;
use poneglyph_sql::{
    canonical_plan, canonical_plan_fingerprint, catalog_of, parse, plan_query, Database, Plan,
    Schema,
};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The proof-cache key: which database state, which (canonical) query.
pub type CacheKey = ([u8; 64], [u8; 32]);

/// Tunables for a [`ProvingService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of prover worker threads.
    pub workers: usize,
    /// Per-proof thread budget: how many threads one worker may fan out
    /// across *inside* a single proof (FFTs, MSMs, quotient chunks, IPA
    /// folding). `0` = auto-detect (the `PONEGLYPH_PROVER_THREADS`
    /// environment variable, else hardware parallelism). Operators trade
    /// this against `workers`: many workers × few threads maximizes
    /// throughput under load, few workers × many threads minimizes cold
    /// latency. Proof bytes are identical either way.
    pub prover_threads: usize,
    /// Maximum number of cached [`QueryResponse`]s (shared across all
    /// hosted databases).
    pub cache_capacity: usize,
    /// Approximate byte budget of the proof cache (each entry is charged
    /// [`QueryResponse::approx_bytes`]); least-recently-used responses are
    /// evicted once the total exceeds it. `0` disables the byte bound —
    /// only `cache_capacity` applies.
    pub cache_bytes: usize,
    /// Bound of the job queue; submissions beyond it block (or are
    /// rejected by [`ProvingService::try_submit`]).
    pub queue_depth: usize,
    /// Seed for the workers' proof-blinding randomness.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|v| v.get().min(4))
                .unwrap_or(2),
            prover_threads: 0,
            cache_capacity: 64,
            cache_bytes: 64 << 20,
            queue_depth: 64,
            seed: 0x706f_6e65,
        }
    }
}

/// Errors surfaced to a service caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded queue was full (backpressure).
    QueueFull,
    /// The query could not be proven (planning, execution or prover error).
    Prove(String),
    /// The service shut down before answering.
    Shutdown,
    /// No database with the requested digest is attached (hex digest).
    UnknownDatabase(String),
    /// The legacy single-database path was used but no database is
    /// attached.
    NoDatabase,
    /// SQL text failed to parse or plan.
    Sql(String),
    /// A mutation batch was rejected (unknown table, width mismatch,
    /// out-of-range value); the hosted state is unchanged.
    Mutation(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "job queue full"),
            ServiceError::Prove(e) => write!(f, "proving failed: {e}"),
            ServiceError::Shutdown => write!(f, "service shut down"),
            ServiceError::UnknownDatabase(d) => write!(f, "no database with digest {d}"),
            ServiceError::NoDatabase => write!(f, "no database attached"),
            ServiceError::Sql(e) => write!(f, "SQL error: {e}"),
            ServiceError::Mutation(e) => write!(f, "mutation rejected: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A successfully served query.
#[derive(Clone, Debug)]
pub struct Served {
    /// The proof-carrying response (shared with the cache). The proof is
    /// of the *canonical* form of the submitted plan — verify it with a
    /// [`VerifierSession`](poneglyph_core::VerifierSession) over the
    /// database's shape.
    pub response: Arc<QueryResponse>,
    /// True when the response came from the proof cache without proving.
    pub cache_hit: bool,
}

/// Per-database monotonic counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatabaseStats {
    /// The database's commitment digest.
    pub digest: [u8; 64],
    /// The lineage's mutation epoch (number of append batches absorbed;
    /// 0 for a freshly attached state).
    pub epoch: u64,
    /// Proofs generated for this database.
    pub proofs_generated: u64,
    /// Queries answered from the proof cache.
    pub cache_hits: u64,
    /// Queries that waited for an identical in-flight proof instead of
    /// proving again.
    pub inflight_dedups: u64,
    /// Responses currently held in the proof cache for this database.
    pub cached_proofs: u64,
}

/// The outcome of one applied append batch — returned by
/// [`ProvingService::append_rows`] and surfaced in the wire protocol's
/// append acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationStats {
    /// The digest the batch was applied against.
    pub old_digest: [u8; 64],
    /// The successor digest now serving the lineage (equal to
    /// `old_digest` for an empty batch, which is a no-op).
    pub new_digest: [u8; 64],
    /// The lineage's mutation epoch after the append.
    pub epoch: u64,
    /// Rows appended by this batch.
    pub appended_rows: usize,
    /// Wall-clock cost of the homomorphic commitment update (the O(delta)
    /// MSM + digest recompute — the cost a full re-commit would multiply).
    pub commit_update: Duration,
    /// Cached proofs invalidated — exactly the old digest's entries.
    pub entries_invalidated: usize,
}

/// One hosted database's advertisement data (a consistent row of
/// [`ProvingService::info_snapshot`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatabaseSnapshot {
    /// Public table metadata `(name, schema, row count)`, in name order.
    pub tables: Vec<(String, Schema, u64)>,
    /// The database's counters.
    pub stats: DatabaseStats,
}

/// Monotonic service counters (global plus per-database).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Proofs actually generated (cache misses that reached the prover).
    pub proofs_generated: u64,
    /// Queries answered straight from the cache.
    pub cache_hits: u64,
    /// Queries that missed the cache.
    pub cache_misses: u64,
    /// Append batches applied across all hosted databases.
    pub mutations: u64,
    /// Rows appended across all hosted databases.
    pub rows_appended: u64,
    /// Approximate bytes currently held by the proof cache.
    pub cache_bytes: u64,
    /// The *effective* per-proof thread budget (the resolved value of
    /// [`ServiceConfig::prover_threads`]; auto-detection already applied).
    pub prover_threads: usize,
    /// Per-database breakdown, in digest order.
    pub databases: Vec<DatabaseStats>,
}

struct Job {
    entry: Arc<DbEntry>,
    plan: Plan,
    /// Enqueue time, for the queue-wait histogram (observed at dequeue).
    submitted: Instant,
    reply: SyncSender<Result<Served, ServiceError>>,
}

/// Handles into the global metrics registry, resolved once at service
/// construction so the hot path never takes the registration mutex. The
/// counters mirror the `Shared` atomics (which remain authoritative for
/// [`ProvingService::stats`]); gauges are set at scrape time by
/// `refresh_metrics`.
struct Metrics {
    queue_wait: obs::Histogram,
    proofs_generated: obs::Counter,
    cache_hits: obs::Counter,
    cache_misses: obs::Counter,
    inflight_dedups: obs::Counter,
    mutations: obs::Counter,
    rows_appended: obs::Counter,
    cache_bytes: obs::Gauge,
    cache_entries: obs::Gauge,
    cache_evictions: obs::Gauge,
    prover_threads: obs::Gauge,
}

impl Metrics {
    fn new() -> Self {
        let reg = obs::global();
        Self {
            queue_wait: reg.histogram(
                "poneglyph_queue_wait_nanos",
                &[],
                obs::nanos_buckets(),
                "Time a job spent in the bounded queue before a worker dequeued it",
            ),
            proofs_generated: reg.counter(
                "poneglyph_proofs_generated_total",
                &[],
                "Proofs actually generated (cache misses that reached the prover)",
            ),
            cache_hits: reg.counter(
                "poneglyph_proof_cache_hits_total",
                &[],
                "Queries answered straight from the proof cache",
            ),
            cache_misses: reg.counter(
                "poneglyph_proof_cache_misses_total",
                &[],
                "Queries that missed the proof cache",
            ),
            inflight_dedups: reg.counter(
                "poneglyph_inflight_dedups_total",
                &[],
                "Queries that waited for an identical in-flight proof instead of proving again",
            ),
            mutations: reg.counter(
                "poneglyph_mutations_total",
                &[],
                "Append batches applied across all hosted databases",
            ),
            rows_appended: reg.counter(
                "poneglyph_rows_appended_total",
                &[],
                "Rows appended across all hosted databases",
            ),
            cache_bytes: reg.gauge(
                "poneglyph_proof_cache_bytes",
                &[],
                "Approximate bytes currently held by the proof cache",
            ),
            cache_entries: reg.gauge(
                "poneglyph_proof_cache_entries",
                &[],
                "Responses currently held by the proof cache",
            ),
            cache_evictions: reg.gauge(
                "poneglyph_proof_cache_evictions",
                &[],
                "Responses evicted by the proof cache's capacity or byte bounds so far",
            ),
            prover_threads: reg.gauge(
                "poneglyph_prover_threads",
                &[],
                "Effective per-proof thread budget",
            ),
        }
    }
}

struct Shared {
    params: IpaParams,
    /// Per-proof thread budget handed to every hosted [`ProverSession`].
    parallelism: Parallelism,
    registry: RwLock<DatabaseRegistry>,
    cache: Mutex<LruCache<CacheKey, Arc<QueryResponse>>>,
    /// Keys currently being proven, for in-flight deduplication.
    inflight: Mutex<HashSet<CacheKey>>,
    inflight_done: Condvar,
    metrics: Metrics,
    proofs_generated: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    mutations: AtomicU64,
    rows_appended: AtomicU64,
}

/// A handle to one submitted query; resolve it with [`JobHandle::wait`].
pub struct JobHandle {
    rx: Receiver<Result<Served, ServiceError>>,
}

impl JobHandle {
    /// Block until the service answers (or shuts down).
    pub fn wait(self) -> Result<Served, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }

    /// A handle that resolves immediately to `err` (submission-time
    /// failures on the infallible legacy path).
    fn failed(err: ServiceError) -> Self {
        let (reply, rx) = sync_channel(1);
        let _ = reply.send(Err(err));
        Self { rx }
    }
}

/// A multi-threaded proving service over a registry of committed
/// databases.
///
/// Dropping the service closes the queue and joins every worker.
pub struct ProvingService {
    shared: Arc<Shared>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ProvingService {
    /// Start a service with no databases attached.
    pub fn empty(params: IpaParams, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            params,
            parallelism: Parallelism::new(config.prover_threads),
            registry: RwLock::new(DatabaseRegistry::new()),
            cache: Mutex::new(LruCache::with_byte_budget(
                config.cache_capacity,
                config.cache_bytes,
            )),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            metrics: Metrics::new(),
            proofs_generated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            rows_appended: AtomicU64::new(0),
        });
        let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                let rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
                std::thread::Builder::new()
                    .name(format!("poneglyph-prover-{i}"))
                    .spawn(move || worker_loop(shared, rx, rng))
                    .expect("spawn prover worker")
            })
            .collect();
        Self {
            shared,
            tx: Some(tx),
            workers,
        }
    }

    /// Start the service hosting one database (which becomes the default
    /// for the legacy single-database API).
    pub fn new(params: IpaParams, db: Database, config: ServiceConfig) -> Self {
        let service = Self::empty(params, config);
        service.attach(db);
        service
    }

    /// Commit to `db` and host it; returns the digest that now addresses
    /// it. The first attached database becomes the default. Re-attaching
    /// an already-hosted digest *replaces* its entry — the SQL catalog and
    /// primary-key metadata take effect and that database's counters (and
    /// cached proving keys) restart; cached proofs stay valid because the
    /// committed state is identical.
    pub fn attach(&self, db: Database) -> [u8; 64] {
        self.attach_with_pks(db, &[])
    }

    /// [`attach`](Self::attach) with primary-key metadata for server-side
    /// SQL planning (joins are oriented PK-side right).
    pub fn attach_with_pks(&self, db: Database, pks: &[(&str, &str)]) -> [u8; 64] {
        let catalog = catalog_of(&db, pks);
        let session = ProverSession::new(self.shared.params.clone(), db)
            .with_parallelism(self.shared.parallelism);
        let digest = session.digest();
        let shape = session.shape();
        let entry = Arc::new(DbEntry {
            digest,
            session,
            shape,
            catalog,
            proofs_generated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            inflight_dedups: AtomicU64::new(0),
        });
        self.shared
            .registry
            .write()
            .expect("registry lock")
            .insert(entry)
    }

    /// Append a batch of rows to the database addressed by `digest` — the
    /// mutable-state path. The column commitments are advanced
    /// *homomorphically* (one MSM over only the new rows' cells, cost
    /// O(batch) instead of a full re-commit), a successor entry is swapped
    /// in under the new digest atomically (registry write lock), and
    /// exactly the old digest's cached proofs are purged.
    ///
    /// Epoch-style snapshot retention: jobs already submitted against the
    /// old digest hold an `Arc` of its entry and complete — and verify —
    /// against that retained snapshot; the entry is freed when its last
    /// in-flight job finishes. New queries naming the old digest are
    /// rejected (`UnknownDatabase`), exactly as a detach would.
    ///
    /// The heavy work (database clone, MSM) runs without the registry
    /// lock; only the final swap takes the write lock, and it lands only
    /// if the lineage has not moved meanwhile (a concurrent append or
    /// detach of the same digest is a clean `Mutation` error — re-resolve
    /// and retry).
    ///
    /// An empty batch is a no-op: same digest, nothing invalidated, no
    /// epoch advance. A rejected batch (unknown table, width mismatch,
    /// out-of-range value) changes nothing.
    pub fn append_rows(
        &self,
        digest: &[u8; 64],
        table: &str,
        rows: Vec<Vec<i64>>,
    ) -> Result<MutationStats, ServiceError> {
        let batch = RowBatch::new(table, rows);
        // Resolve and validate under the *read* lock; the expensive part
        // of the mutation (database clone + homomorphic MSM) runs with no
        // registry lock held, so query submission never stalls behind it.
        let entry = self.resolve(digest)?;
        batch
            .validate(entry.session.database())
            .map_err(|e| ServiceError::Mutation(e.to_string()))?;
        if batch.rows.is_empty() {
            let epoch = self.epoch_of(digest).unwrap_or(0);
            return Ok(MutationStats {
                old_digest: *digest,
                new_digest: *digest,
                epoch,
                appended_rows: 0,
                commit_update: Duration::ZERO,
                entries_invalidated: 0,
            });
        }

        // Build the successor state: cloned values plus a homomorphically
        // advanced commitment.
        let mut db = entry.session.database().clone();
        let mut commitment = entry.session.commitment().clone();
        batch
            .apply(&mut db)
            .map_err(|e| ServiceError::Mutation(e.to_string()))?;
        let started = Instant::now();
        let delta_commitments = commitment
            .append_rows(&self.shared.params, &batch.table, &batch.rows)
            .map_err(|e| ServiceError::Mutation(e.to_string()))?;
        let new_digest = commitment.digest();
        let commit_update = started.elapsed();

        // Seeding the session with the updated commitment is what makes
        // the append O(batch); debug builds re-assert it equals a fresh
        // commit of the mutated database.
        let session = ProverSession::with_commitment(self.shared.params.clone(), db, commitment)
            .with_parallelism(self.shared.parallelism);
        let shape = session.shape();
        let successor = Arc::new(DbEntry {
            digest: new_digest,
            session,
            shape,
            catalog: entry.catalog.clone(),
            proofs_generated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            inflight_dedups: AtomicU64::new(0),
        });

        // Swap under a short write lock. The lineage may have moved while
        // we worked (concurrent append, detach, re-attach): the swap only
        // lands if the digest still names the entry we started from —
        // otherwise the commitment we advanced is stale and the caller
        // must re-resolve and retry.
        let epoch = {
            let mut registry = self.shared.registry.write().expect("registry lock");
            match registry.get(digest) {
                Some(current) if Arc::ptr_eq(&current, &entry) => {
                    let mut log = registry.take_log(digest);
                    log.record(AppliedDelta {
                        seq: log.epoch(),
                        table: batch.table.clone(),
                        rows: batch.rows.len(),
                        delta_commitments,
                        pre_digest: *digest,
                        post_digest: new_digest,
                    });
                    let epoch = log.epoch();
                    registry.advance(digest, successor, log);
                    epoch
                }
                _ => {
                    return Err(ServiceError::Mutation(format!(
                        "database {} was mutated or detached concurrently; \
                         re-resolve and retry",
                        digest_hex(&digest[..16])
                    )))
                }
            }
        };

        // Purge precisely the old digest's cache entries; every other
        // database's proofs survive. (In-flight old-digest jobs cannot
        // re-populate: `serve_one` re-checks the registry before caching.)
        let mut entries_invalidated = 0usize;
        self.shared
            .cache
            .lock()
            .expect("cache lock")
            .retain(|key, _| {
                let stale = key.0 == *digest;
                entries_invalidated += usize::from(stale);
                !stale
            });
        self.shared.mutations.fetch_add(1, Ordering::SeqCst);
        self.shared
            .rows_appended
            .fetch_add(batch.rows.len() as u64, Ordering::SeqCst);
        self.shared.metrics.mutations.inc();
        self.shared
            .metrics
            .rows_appended
            .add(batch.rows.len() as u64);

        Ok(MutationStats {
            old_digest: *digest,
            new_digest,
            epoch,
            appended_rows: batch.rows.len(),
            commit_update,
            entries_invalidated,
        })
    }

    /// The mutation epoch of a hosted digest (0 = freshly attached).
    pub fn epoch_of(&self, digest: &[u8; 64]) -> Option<u64> {
        self.shared
            .registry
            .read()
            .expect("registry lock")
            .epoch_of(digest)
    }

    /// The append history of a hosted digest's lineage: every applied
    /// batch with its mini-commitment and digest transition.
    pub fn delta_log(&self, digest: &[u8; 64]) -> Option<DeltaLog> {
        self.shared
            .registry
            .read()
            .expect("registry lock")
            .log(digest)
            .cloned()
    }

    /// Stop hosting a database; its cached proofs are purged. Returns
    /// `false` if no such digest was attached.
    pub fn detach(&self, digest: &[u8; 64]) -> bool {
        let removed = self
            .shared
            .registry
            .write()
            .expect("registry lock")
            .remove(digest)
            .is_some();
        if removed {
            self.shared
                .cache
                .lock()
                .expect("cache lock")
                .retain(|key, _| key.0 != *digest);
        }
        removed
    }

    /// Digests of every hosted database, in digest order.
    pub fn digests(&self) -> Vec<[u8; 64]> {
        self.shared
            .registry
            .read()
            .expect("registry lock")
            .digests()
    }

    /// The default database's digest, if any database is attached.
    pub fn default_digest(&self) -> Option<[u8; 64]> {
        self.shared
            .registry
            .read()
            .expect("registry lock")
            .default_digest()
    }

    /// The default database's registry digest.
    ///
    /// Panics when no database is attached — use
    /// [`default_digest`](Self::default_digest) for the fallible form.
    pub fn digest(&self) -> [u8; 64] {
        self.default_digest()
            .expect("no database attached to the service")
    }

    /// The default database's shape (schemas + row counts, zeroed values).
    ///
    /// Panics when no database is attached — use
    /// [`shape_of`](Self::shape_of) for the fallible form.
    pub fn shape(&self) -> Database {
        let digest = self.digest();
        self.shape_of(&digest).expect("default database attached")
    }

    /// The shape of the database addressed by `digest`.
    pub fn shape_of(&self, digest: &[u8; 64]) -> Option<Database> {
        self.shared
            .registry
            .read()
            .expect("registry lock")
            .get(digest)
            .map(|e| e.shape.clone())
    }

    /// The service's public parameters.
    pub fn params(&self) -> &IpaParams {
        &self.shared.params
    }

    fn resolve(&self, digest: &[u8; 64]) -> Result<Arc<DbEntry>, ServiceError> {
        self.shared
            .registry
            .read()
            .expect("registry lock")
            .get(digest)
            .ok_or_else(|| ServiceError::UnknownDatabase(digest_hex(&digest[..16])))
    }

    fn default_entry(&self) -> Result<Arc<DbEntry>, ServiceError> {
        self.shared
            .registry
            .read()
            .expect("registry lock")
            .default_entry()
            .ok_or(ServiceError::NoDatabase)
    }

    fn enqueue(&self, entry: Arc<DbEntry>, plan: Plan) -> JobHandle {
        let (reply, rx) = sync_channel(1);
        let job = Job {
            entry,
            plan,
            submitted: Instant::now(),
            reply,
        };
        if let Some(tx) = &self.tx {
            // A send error means every worker is gone; the handle will
            // resolve to `Shutdown` because the reply sender was dropped.
            let _ = tx.send(job);
        }
        JobHandle { rx }
    }

    /// Enqueue a query against the default database, blocking while the
    /// queue is full.
    pub fn submit(&self, plan: Plan) -> JobHandle {
        match self.default_entry() {
            Ok(entry) => self.enqueue(entry, plan),
            Err(e) => JobHandle::failed(e),
        }
    }

    /// Enqueue a query against the database addressed by `digest`,
    /// blocking while the queue is full.
    pub fn submit_on(&self, digest: &[u8; 64], plan: Plan) -> Result<JobHandle, ServiceError> {
        Ok(self.enqueue(self.resolve(digest)?, plan))
    }

    /// Enqueue against the default database, failing fast with
    /// [`ServiceError::QueueFull`] instead of blocking.
    pub fn try_submit(&self, plan: Plan) -> Result<JobHandle, ServiceError> {
        let entry = self.default_entry()?;
        self.try_enqueue(entry, plan)
    }

    /// Enqueue against the database addressed by `digest`, failing fast
    /// with [`ServiceError::QueueFull`] instead of blocking.
    pub fn try_submit_on(&self, digest: &[u8; 64], plan: Plan) -> Result<JobHandle, ServiceError> {
        let entry = self.resolve(digest)?;
        self.try_enqueue(entry, plan)
    }

    fn try_enqueue(&self, entry: Arc<DbEntry>, plan: Plan) -> Result<JobHandle, ServiceError> {
        let (reply, rx) = sync_channel(1);
        let job = Job {
            entry,
            plan,
            submitted: Instant::now(),
            reply,
        };
        match &self.tx {
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(JobHandle { rx }),
                Err(TrySendError::Full(_)) => Err(ServiceError::QueueFull),
                Err(TrySendError::Disconnected(_)) => Err(ServiceError::Shutdown),
            },
            None => Err(ServiceError::Shutdown),
        }
    }

    /// Submit and wait on the default database: the blocking request path.
    pub fn query(&self, plan: Plan) -> Result<Served, ServiceError> {
        self.submit(plan).wait()
    }

    /// Submit and wait against the database addressed by `digest`.
    pub fn query_on(&self, digest: &[u8; 64], plan: Plan) -> Result<Served, ServiceError> {
        self.submit_on(digest, plan)?.wait()
    }

    /// Parse and plan SQL text against the database addressed by `digest`
    /// (server-side planning: the client never needs the string
    /// dictionary). Returns the *canonical* plan — the form the proof will
    /// be generated for and must be verified against.
    pub fn plan_sql(&self, digest: &[u8; 64], sql: &str) -> Result<Plan, ServiceError> {
        let entry = self.resolve(digest)?;
        plan_on_entry(&entry, sql)
    }

    /// Plan SQL text server-side, then submit and wait. Returns the
    /// canonical plan alongside the response so the caller can verify
    /// exactly what was proven.
    pub fn query_sql(&self, digest: &[u8; 64], sql: &str) -> Result<(Plan, Served), ServiceError> {
        let entry = self.resolve(digest)?;
        let plan = plan_on_entry(&entry, sql)?;
        let served = self.enqueue(entry, plan.clone()).wait()?;
        Ok((plan, served))
    }

    /// A snapshot of the service counters, including the per-database
    /// breakdown.
    pub fn stats(&self) -> ServiceStats {
        let registry = self.shared.registry.read().expect("registry lock");
        let databases = self.collect_database_stats(&registry);
        drop(registry);
        let cache_bytes = self.shared.cache.lock().expect("cache lock").total_bytes() as u64;
        ServiceStats {
            proofs_generated: self.shared.proofs_generated.load(Ordering::SeqCst),
            cache_hits: self.shared.cache_hits.load(Ordering::SeqCst),
            cache_misses: self.shared.cache_misses.load(Ordering::SeqCst),
            mutations: self.shared.mutations.load(Ordering::SeqCst),
            rows_appended: self.shared.rows_appended.load(Ordering::SeqCst),
            cache_bytes,
            prover_threads: self.shared.parallelism.threads(),
            databases,
        }
    }

    /// The effective per-proof thread budget every hosted session proves
    /// with (the resolved [`ServiceConfig::prover_threads`]).
    pub fn prover_parallelism(&self) -> Parallelism {
        self.shared.parallelism
    }

    /// Render the global metrics registry in the Prometheus text
    /// exposition format, with this service's scrape-time gauges (cache
    /// occupancy, per-database mutation epochs, thread budget) refreshed
    /// first. Backs both the `REQ_METRICS` wire frame and the
    /// `GET /metrics` HTTP endpoint.
    pub fn metrics_text(&self) -> String {
        self.refresh_metrics();
        obs::global().render()
    }

    /// Set every gauge whose truth lives in service state rather than in
    /// an event stream. Per-database epoch gauges are rebuilt from scratch
    /// each scrape — mutation swaps retire digests, and a retired digest's
    /// series must disappear rather than freeze at its last value.
    fn refresh_metrics(&self) {
        let m = &self.shared.metrics;
        {
            let cache = self.shared.cache.lock().expect("cache lock");
            m.cache_bytes.set(cache.total_bytes() as i64);
            m.cache_entries.set(cache.len() as i64);
            m.cache_evictions.set(cache.evictions() as i64);
        }
        m.prover_threads
            .set(self.shared.parallelism.threads() as i64);

        let reg = obs::global();
        reg.clear_series("poneglyph_db_epoch");
        let registry = self.shared.registry.read().expect("registry lock");
        for entry in registry.entries() {
            let epoch = registry.epoch_of(&entry.digest).unwrap_or(0);
            let db = digest_hex(&entry.digest[..16]);
            reg.gauge(
                "poneglyph_db_epoch",
                &[("db", &db)],
                "Mutation epoch of each hosted database (append batches absorbed)",
            )
            .set(epoch as i64);
        }
    }

    /// A *consistent* snapshot for the info advertisement: the default
    /// digest and every hosted database's table metadata + counters, read
    /// under one registry lock so the default always names an advertised
    /// database.
    pub fn info_snapshot(&self) -> (Option<[u8; 64]>, Vec<DatabaseSnapshot>) {
        let registry = self.shared.registry.read().expect("registry lock");
        let default_digest = registry.default_digest();
        let stats = self.collect_database_stats(&registry);
        let snapshots = registry
            .entries()
            .zip(stats)
            .map(|(entry, stats)| {
                let mut tables: Vec<_> = entry
                    .shape
                    .tables
                    .iter()
                    .map(|(name, t)| (name.clone(), t.schema.clone(), t.len() as u64))
                    .collect();
                tables.sort_by(|a, b| a.0.cmp(&b.0));
                DatabaseSnapshot { tables, stats }
            })
            .collect();
        (default_digest, snapshots)
    }

    /// Per-database counters for every registered entry, with cached-proof
    /// counts from a *single* pass over the cache keys. The caller holds
    /// the registry read lock (entries and counts stay consistent).
    fn collect_database_stats(&self, registry: &DatabaseRegistry) -> Vec<DatabaseStats> {
        let mut cached: HashMap<[u8; 64], u64> = HashMap::new();
        {
            let cache = self.shared.cache.lock().expect("cache lock");
            for key in cache.keys() {
                *cached.entry(key.0).or_insert(0) += 1;
            }
        }
        registry
            .entries()
            .map(|entry| DatabaseStats {
                digest: entry.digest,
                epoch: registry.epoch_of(&entry.digest).unwrap_or(0),
                proofs_generated: entry.proofs_generated.load(Ordering::SeqCst),
                cache_hits: entry.cache_hits.load(Ordering::SeqCst),
                inflight_dedups: entry.inflight_dedups.load(Ordering::SeqCst),
                cached_proofs: cached.get(&entry.digest).copied().unwrap_or(0),
            })
            .collect()
    }
}

/// Parse + plan SQL against one hosted database.
///
/// The string dictionary is cloned per request: literals not present in
/// the database intern to fresh ids that match no stored value (an empty
/// predicate match), without mutating the committed database state.
fn plan_on_entry(entry: &DbEntry, sql: &str) -> Result<Plan, ServiceError> {
    let stmt = parse(sql).map_err(ServiceError::Sql)?;
    let mut dict = entry.session.database().dict.clone();
    let plan = plan_query(&stmt, &entry.catalog, &mut dict).map_err(ServiceError::Sql)?;
    Ok(canonical_plan(&plan))
}

impl Drop for ProvingService {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<Receiver<Job>>>, mut rng: StdRng) {
    loop {
        // Hold the receiver lock only for the dequeue, not the proving.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        let Ok(job) = job else { break };
        shared
            .metrics
            .queue_wait
            .observe(job.submitted.elapsed().as_nanos() as u64);
        let served = serve_one(&shared, &job.entry, &job.plan, &mut rng);
        // The client may have given up; a dead reply channel is fine.
        let _ = job.reply.send(served);
    }
}

/// Answer one query: cache → in-flight dedup → prove.
///
/// The canonical plan is the query's identity: the proof is generated for
/// (and must be verified against) `canonical_plan(plan)`, so that every
/// plan sharing a fingerprint shares one cache entry *and* one circuit.
fn serve_one(
    shared: &Shared,
    entry: &DbEntry,
    plan: &Plan,
    rng: &mut StdRng,
) -> Result<Served, ServiceError> {
    let plan = canonical_plan(plan);
    let fingerprint = canonical_plan_fingerprint(&plan);
    let key: CacheKey = (entry.digest, fingerprint);
    // The request trace covers everything on this worker thread from here
    // on: the prover's stage spans attribute to it, and the completed
    // record (with cache-hit flag) lands in the slow-query ring.
    let _request = obs::begin_request(format!(
        "{}:{}",
        digest_hex(&entry.digest[..8]),
        digest_hex(&fingerprint[..8])
    ));

    // Claim the key, or wait for whoever holds it and take their result
    // from the cache. Lock order is inflight → cache throughout.
    {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        let mut waited = false;
        loop {
            if let Some(hit) = shared.cache.lock().expect("cache lock").get(&key) {
                shared.cache_hits.fetch_add(1, Ordering::SeqCst);
                entry.cache_hits.fetch_add(1, Ordering::SeqCst);
                shared.metrics.cache_hits.inc();
                obs::mark_cache_hit();
                return Ok(Served {
                    response: hit,
                    cache_hit: true,
                });
            }
            if inflight.insert(key) {
                break; // claimed: this worker proves
            }
            if !waited {
                waited = true;
                entry.inflight_dedups.fetch_add(1, Ordering::SeqCst);
                shared.metrics.inflight_dedups.inc();
            }
            inflight = shared.inflight_done.wait(inflight).expect("inflight wait");
        }
    }

    shared.cache_misses.fetch_add(1, Ordering::SeqCst);
    shared.proofs_generated.fetch_add(1, Ordering::SeqCst);
    entry.proofs_generated.fetch_add(1, Ordering::SeqCst);
    shared.metrics.cache_misses.inc();
    shared.metrics.proofs_generated.inc();
    // One canonicalization + fingerprint per request: the session reuses
    // the values computed above for the cache key.
    let outcome = entry
        .session
        .prove_canonical(&plan, fingerprint, rng)
        .map(Arc::new)
        .map_err(|e| ServiceError::Prove(e.to_string()));

    if let Ok(response) = &outcome {
        // Insert only while the database is still attached, holding the
        // registry read lock across the insert: if a concurrent `detach`
        // already removed the entry we skip (its purge may have run);
        // if it removes the entry after our check, its purge is ordered
        // after our insert and erases it. Either way a detached digest
        // leaves nothing in the cache.
        let registry = shared.registry.read().expect("registry lock");
        if registry.get(&entry.digest).is_some() {
            // Weighted by approximate wire size: the cache's byte budget
            // bounds memory, not just entry count.
            shared.cache.lock().expect("cache lock").insert_weighted(
                key,
                Arc::clone(response),
                response.approx_bytes(),
            );
        }
        drop(registry);
    }

    // Release the claim whether proving succeeded or failed, so waiters
    // either hit the cache or retry the proof themselves.
    let mut inflight = shared.inflight.lock().expect("inflight lock");
    inflight.remove(&key);
    shared.inflight_done.notify_all();
    drop(inflight);

    outcome.map(|response| Served {
        response,
        cache_hit: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poneglyph_core::VerifierSession;
    use poneglyph_sql::{CmpOp, ColumnType, Predicate, Schema, Table};

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let mut t = Table::empty(Schema::new(&[
            ("id", ColumnType::Int),
            ("val", ColumnType::Int),
        ]));
        for (id, val) in [(1, 10), (2, 20), (3, 30), (4, 40)] {
            t.push_row(&[id, val]);
        }
        db.add_table("t", t);
        db
    }

    fn other_db() -> Database {
        let mut db = Database::new();
        let mut t = Table::empty(Schema::new(&[
            ("id", ColumnType::Int),
            ("val", ColumnType::Int),
        ]));
        for (id, val) in [(1, 5), (2, 25), (3, 35)] {
            t.push_row(&[id, val]);
        }
        db.add_table("t", t);
        db
    }

    fn filter_plan(bound: i64) -> Plan {
        Plan::Filter {
            input: Box::new(Plan::Scan { table: "t".into() }),
            predicates: vec![Predicate::ColConst {
                col: 1,
                op: CmpOp::Ge,
                value: bound,
            }],
        }
    }

    #[test]
    fn serves_and_caches() {
        let service = ProvingService::new(
            IpaParams::setup(11),
            tiny_db(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let first = service.query(filter_plan(20)).expect("first");
        assert!(!first.cache_hit);
        let second = service.query(filter_plan(20)).expect("second");
        assert!(second.cache_hit);
        assert_eq!(first.response, second.response);

        let stats = service.stats();
        assert_eq!(stats.proofs_generated, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.databases.len(), 1);
        assert_eq!(stats.databases[0].proofs_generated, 1);
        assert_eq!(stats.databases[0].cache_hits, 1);
        assert_eq!(stats.databases[0].cached_proofs, 1);

        // The cached response still verifies from public information.
        let verifier = VerifierSession::new(service.params().clone(), service.shape());
        let verified = verifier
            .verify(&filter_plan(20), &second.response)
            .expect("verify");
        assert_eq!(verified, second.response.result);
    }

    #[test]
    fn semantically_equal_plans_share_a_cache_entry() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        let a = Plan::Filter {
            input: Box::new(Plan::Scan { table: "t".into() }),
            predicates: vec![
                Predicate::ColConst {
                    col: 1,
                    op: CmpOp::Ge,
                    value: 20,
                },
                Predicate::ColConst {
                    col: 0,
                    op: CmpOp::Le,
                    value: 3,
                },
            ],
        };
        let b = Plan::Filter {
            input: Box::new(Plan::Scan { table: "t".into() }),
            predicates: vec![
                Predicate::ColConst {
                    col: 0,
                    op: CmpOp::Le,
                    value: 3,
                },
                Predicate::ColConst {
                    col: 1,
                    op: CmpOp::Ge,
                    value: 20,
                },
            ],
        };
        assert!(!service.query(a.clone()).expect("a").cache_hit);
        let shared = service.query(b.clone()).expect("b");
        assert!(shared.cache_hit);
        assert_eq!(service.stats().proofs_generated, 1);

        // The shared proof is of the canonical plan; a verifier session
        // canonicalizes internally, so *both* spellings verify.
        let verifier = VerifierSession::new(service.params().clone(), service.shape());
        for plan in [a, b] {
            let verified = verifier
                .verify(&plan, &shared.response)
                .expect("shared proof verifies");
            assert_eq!(verified, shared.response.result);
        }
    }

    #[test]
    fn prover_threads_flow_from_config_to_sessions() {
        let service = ProvingService::new(
            IpaParams::setup(11),
            tiny_db(),
            ServiceConfig {
                prover_threads: 3,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.prover_parallelism().threads(), 3);
        assert_eq!(service.stats().prover_threads, 3);
        // Sessions created by attach — and by the mutation path's
        // successor swap — inherit the budget.
        let digest = service.digest();
        let stats = service
            .append_rows(&digest, "t", vec![vec![5, 50]])
            .expect("append");
        let served = service
            .query_on(&stats.new_digest, filter_plan(20))
            .expect("proves under explicit budget");
        assert_eq!(served.response.result.len(), 4);
        // `0` resolves to a concrete budget rather than staying zero.
        let auto = ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        assert!(auto.stats().prover_threads >= 1);
    }

    #[test]
    fn session_stats_report_prover_stage_times() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        service.query(filter_plan(20)).expect("prove");
        let registry = service.shared.registry.read().expect("registry");
        let entry = registry.default_entry().expect("entry");
        let stats = entry.session.stats();
        assert!(stats.commit_nanos > 0, "commit stage was timed");
        assert!(stats.quotient_nanos > 0, "quotient stage was timed");
        assert!(stats.open_nanos > 0, "open stage was timed");
        // Monotone: a second (cache-missing) proof only grows them.
        drop(registry);
        service.query(filter_plan(25)).expect("second prove");
        let registry = service.shared.registry.read().expect("registry");
        let after = registry.default_entry().expect("entry").session.stats();
        assert!(after.commit_nanos >= stats.commit_nanos);
        assert!(after.quotient_nanos >= stats.quotient_nanos);
        assert!(after.open_nanos >= stats.open_nanos);
    }

    #[test]
    fn bad_query_reports_error_not_panic() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        let missing = Plan::Scan {
            table: "nope".into(),
        };
        match service.query(missing) {
            Err(ServiceError::Prove(_)) => {}
            other => panic!("expected prove error, got {other:?}"),
        }
        // The failure is not cached; the service keeps running.
        assert_eq!(service.stats().proofs_generated, 1);
        assert!(service.query(filter_plan(20)).is_ok());
    }

    #[test]
    fn multi_database_attach_detach() {
        let service = ProvingService::empty(IpaParams::setup(11), ServiceConfig::default());
        assert!(matches!(
            service.query(filter_plan(20)),
            Err(ServiceError::NoDatabase)
        ));

        let d1 = service.attach(tiny_db());
        let d2 = service.attach(other_db());
        assert_ne!(d1, d2);
        assert_eq!(service.digests().len(), 2);
        assert_eq!(service.default_digest(), Some(d1));

        // Same plan, different databases: different proofs, both correct.
        let r1 = service.query_on(&d1, filter_plan(20)).expect("db1");
        let r2 = service.query_on(&d2, filter_plan(20)).expect("db2");
        assert_ne!(r1.response.result, r2.response.result);
        let v1 = VerifierSession::new(
            service.params().clone(),
            service.shape_of(&d1).expect("shape 1"),
        );
        let v2 = VerifierSession::new(
            service.params().clone(),
            service.shape_of(&d2).expect("shape 2"),
        );
        assert!(v1.verify(&filter_plan(20), &r1.response).is_ok());
        assert!(v2.verify(&filter_plan(20), &r2.response).is_ok());
        // Swapped shapes reject (different table sizes → different circuit).
        assert!(v2.verify(&filter_plan(20), &r1.response).is_err());

        let stats = service.stats();
        assert_eq!(stats.databases.len(), 2);
        assert!(stats.databases.iter().all(|d| d.proofs_generated == 1));

        // Detaching purges the cache and unroutes the digest.
        assert!(service.detach(&d1));
        assert!(!service.detach(&d1));
        assert!(matches!(
            service.query_on(&d1, filter_plan(20)),
            Err(ServiceError::UnknownDatabase(_))
        ));
        let stats = service.stats();
        assert_eq!(stats.databases.len(), 1);
        assert_eq!(stats.databases[0].digest, d2);
        // The default fell back to the remaining database.
        assert_eq!(service.default_digest(), Some(d2));
    }

    #[test]
    fn reattach_replaces_entry_and_keeps_cached_proofs() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        let digest = service.digest();
        service.query(filter_plan(20)).expect("prove once");
        assert_eq!(service.stats().databases[0].proofs_generated, 1);

        // Re-attach with PK metadata: same digest, fresh entry.
        let again = service.attach_with_pks(tiny_db(), &[("t", "id")]);
        assert_eq!(again, digest);
        assert_eq!(
            service.stats().databases[0].proofs_generated,
            0,
            "re-attach swaps in a fresh entry (counters restart)"
        );

        // The proof cached before the re-attach still serves: same
        // committed state, same (digest, fingerprint) key.
        let served = service
            .query(filter_plan(20))
            .expect("query after re-attach");
        assert!(served.cache_hit);
    }

    #[test]
    fn append_advances_digest_and_invalidates_precisely() {
        let params = IpaParams::setup(11);
        let service = ProvingService::empty(params.clone(), ServiceConfig::default());
        let d1 = service.attach(tiny_db());
        let d2 = service.attach(other_db());

        // Warm the cache on both databases.
        service.query_on(&d1, filter_plan(20)).expect("db1");
        service.query_on(&d2, filter_plan(20)).expect("db2");
        assert_eq!(service.stats().proofs_generated, 2);

        let stats = service
            .append_rows(&d1, "t", vec![vec![5, 50], vec![6, 60]])
            .expect("append");
        assert_eq!(stats.old_digest, d1);
        assert_ne!(stats.new_digest, d1, "append moves the digest");
        assert_eq!(stats.appended_rows, 2);
        assert_eq!(stats.epoch, 1);
        assert_eq!(
            stats.entries_invalidated, 1,
            "exactly the old digest's cached proof is purged"
        );

        // The old digest is gone; the successor serves (one more row in
        // the result) and verifies against its advertised shape.
        assert!(matches!(
            service.query_on(&d1, filter_plan(20)),
            Err(ServiceError::UnknownDatabase(_))
        ));
        let served = service
            .query_on(&stats.new_digest, filter_plan(20))
            .expect("query successor");
        assert!(!served.cache_hit);
        assert_eq!(served.response.result.len(), 5, "3 old rows + 2 appended");
        let verifier = VerifierSession::new(
            params.clone(),
            service.shape_of(&stats.new_digest).expect("shape"),
        );
        assert!(verifier.verify(&filter_plan(20), &served.response).is_ok());

        // The *other* database's cache entry survived.
        assert!(
            service
                .query_on(&d2, filter_plan(20))
                .expect("db2")
                .cache_hit
        );

        // Lineage accounting: epoch, delta log chain, service counters.
        assert_eq!(service.epoch_of(&stats.new_digest), Some(1));
        assert_eq!(service.epoch_of(&d2), Some(0));
        let log = service.delta_log(&stats.new_digest).expect("log");
        assert_eq!(log.epoch(), 1);
        assert_eq!(log.entries()[0].pre_digest, d1);
        assert_eq!(log.entries()[0].post_digest, stats.new_digest);
        assert_eq!(log.entries()[0].rows, 2);
        let svc_stats = service.stats();
        assert_eq!(svc_stats.mutations, 1);
        assert_eq!(svc_stats.rows_appended, 2);

        // The default followed the lineage (d1 was the first attach).
        assert_eq!(service.default_digest(), Some(stats.new_digest));

        // A second append chains onto the new digest.
        let stats2 = service
            .append_rows(&stats.new_digest, "t", vec![vec![7, 70]])
            .expect("second append");
        assert_eq!(stats2.epoch, 2);
        let log = service.delta_log(&stats2.new_digest).expect("log");
        assert_eq!(log.entries()[1].pre_digest, stats.new_digest);
    }

    #[test]
    fn append_rejections_change_nothing() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        let digest = service.digest();

        assert!(matches!(
            service.append_rows(&[9u8; 64], "t", vec![vec![1, 2]]),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            service.append_rows(&digest, "nope", vec![vec![1, 2]]),
            Err(ServiceError::Mutation(_))
        ));
        assert!(matches!(
            service.append_rows(&digest, "t", vec![vec![1]]),
            Err(ServiceError::Mutation(_))
        ));
        assert!(matches!(
            service.append_rows(&digest, "t", vec![vec![-1, 2]]),
            Err(ServiceError::Mutation(_))
        ));

        // An empty batch is a no-op, not a new state.
        let stats = service.append_rows(&digest, "t", vec![]).expect("empty");
        assert_eq!(stats.new_digest, digest);
        assert_eq!(stats.epoch, 0);
        assert_eq!(service.stats().mutations, 0);
        assert_eq!(service.digests(), vec![digest]);
    }

    #[test]
    fn in_flight_query_completes_against_retained_snapshot() {
        let params = IpaParams::setup(11);
        let service = ProvingService::new(
            params.clone(),
            tiny_db(),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let d1 = service.digest();
        let old_shape = service.shape_of(&d1).expect("shape");

        // Submit resolves the entry Arc *now*; the append below swaps the
        // registry before (or while) the worker proves.
        let handle = service.submit_on(&d1, filter_plan(20)).expect("submit");
        let stats = service
            .append_rows(&d1, "t", vec![vec![5, 50]])
            .expect("append");
        assert_ne!(stats.new_digest, d1);

        // The pre-append job still completes — against the old snapshot —
        // and verifies under the old shape.
        let served = handle.wait().expect("pre-append job");
        assert_eq!(served.response.result.len(), 3, "old state: 3 matches");
        let old_verifier = VerifierSession::new(params.clone(), old_shape);
        assert!(old_verifier
            .verify(&filter_plan(20), &served.response)
            .is_ok());

        // Its proof was *not* cached under the dead digest: a fresh query
        // on the successor proves anew, and the cache holds only live
        // digests.
        let successor = service
            .query_on(&stats.new_digest, filter_plan(20))
            .expect("successor query");
        assert!(!successor.cache_hit);
        let db_stats = service.stats().databases;
        assert_eq!(db_stats.len(), 1);
        assert_eq!(db_stats[0].digest, stats.new_digest);
        assert_eq!(db_stats[0].cached_proofs, 1);
    }

    #[test]
    fn byte_budget_bounds_the_proof_cache() {
        // A 1-byte budget rejects every response: identical queries must
        // re-prove (nothing fits), and the byte accounting stays at zero.
        let service = ProvingService::new(
            IpaParams::setup(11),
            tiny_db(),
            ServiceConfig {
                cache_bytes: 1,
                ..ServiceConfig::default()
            },
        );
        assert!(!service.query(filter_plan(20)).expect("first").cache_hit);
        assert!(!service.query(filter_plan(20)).expect("second").cache_hit);
        let stats = service.stats();
        assert_eq!(stats.proofs_generated, 2);
        assert_eq!(stats.cache_bytes, 0);
        assert_eq!(stats.databases[0].cached_proofs, 0);

        // A generous budget caches normally and reports the bytes held.
        let service = ProvingService::new(
            IpaParams::setup(11),
            tiny_db(),
            ServiceConfig {
                cache_bytes: 64 << 20,
                ..ServiceConfig::default()
            },
        );
        let first = service.query(filter_plan(20)).expect("first");
        assert!(service.query(filter_plan(20)).expect("second").cache_hit);
        let stats = service.stats();
        assert_eq!(stats.proofs_generated, 1);
        assert_eq!(
            stats.cache_bytes,
            first.response.approx_bytes() as u64,
            "cache charges each entry its approximate wire size"
        );
    }

    #[test]
    fn sql_over_the_service() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        let digest = service.digest();
        let (plan, served) = service
            .query_sql(&digest, "SELECT id, val FROM t WHERE val >= 20")
            .expect("sql query");
        let verifier = VerifierSession::new(service.params().clone(), service.shape());
        let verified = verifier.verify(&plan, &served.response).expect("verify");
        assert_eq!(verified.len(), 3);

        // A re-submission of the same SQL (even spelled differently) hits
        // the same cache entry via the canonical plan fingerprint.
        let (_, again) = service
            .query_sql(
                &digest,
                "SELECT id, val FROM t WHERE val >= 20 AND val >= 20",
            )
            .expect("repeat sql");
        assert!(again.cache_hit, "identical SQL must share a proof");
        assert_eq!(service.stats().proofs_generated, 1);

        // Bad SQL is a clean error.
        assert!(matches!(
            service.query_sql(&digest, "SELECT nope FROM nowhere"),
            Err(ServiceError::Sql(_))
        ));
    }
}
