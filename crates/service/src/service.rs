//! The proving service: a long-lived prover answering a stream of queries.
//!
//! This is the paper's Figure 2 deployment model as a running system: the
//! service owns the committed private [`Database`] and the public
//! [`IpaParams`], accepts planned queries through a *bounded* job queue,
//! proves them on a pool of worker threads, and serves repeated queries
//! from an LRU proof cache keyed by `(database digest, plan fingerprint)`.
//! Identical queries in flight at the same time are deduplicated: the
//! second waits for the first proof instead of proving again.

use crate::cache::LruCache;
use poneglyph_core::{database_shape, prove_query, DatabaseCommitment, QueryResponse};
use poneglyph_pcs::IpaParams;
use poneglyph_sql::{canonical_plan, canonical_plan_fingerprint, Database, Plan};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The proof-cache key: which database state, which (canonical) query.
pub type CacheKey = ([u8; 64], [u8; 32]);

/// Tunables for a [`ProvingService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of prover worker threads.
    pub workers: usize,
    /// Maximum number of cached [`QueryResponse`]s.
    pub cache_capacity: usize,
    /// Bound of the job queue; submissions beyond it block (or are
    /// rejected by [`ProvingService::try_submit`]).
    pub queue_depth: usize,
    /// Seed for the workers' proof-blinding randomness.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|v| v.get().min(4))
                .unwrap_or(2),
            cache_capacity: 64,
            queue_depth: 64,
            seed: 0x706f_6e65,
        }
    }
}

/// Errors surfaced to a service caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded queue was full (backpressure).
    QueueFull,
    /// The query could not be proven (planning, execution or prover error).
    Prove(String),
    /// The service shut down before answering.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "job queue full"),
            ServiceError::Prove(e) => write!(f, "proving failed: {e}"),
            ServiceError::Shutdown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A successfully served query.
#[derive(Clone, Debug)]
pub struct Served {
    /// The proof-carrying response (shared with the cache). The proof is
    /// of the *canonical* form of the submitted plan — verify it with
    /// [`verify_query`](poneglyph_core::verify_query) against
    /// [`canonical_plan`].
    pub response: Arc<QueryResponse>,
    /// True when the response came from the proof cache without proving.
    pub cache_hit: bool,
}

/// Monotonic service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Proofs actually generated (cache misses that reached the prover).
    pub proofs_generated: u64,
    /// Queries answered straight from the cache.
    pub cache_hits: u64,
    /// Queries that missed the cache.
    pub cache_misses: u64,
}

struct Job {
    plan: Plan,
    reply: SyncSender<Result<Served, ServiceError>>,
}

struct Shared {
    params: IpaParams,
    db: Database,
    shape: Database,
    digest: [u8; 64],
    cache: Mutex<LruCache<CacheKey, Arc<QueryResponse>>>,
    /// Keys currently being proven, for in-flight deduplication.
    inflight: Mutex<HashSet<CacheKey>>,
    inflight_done: Condvar,
    proofs_generated: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// A handle to one submitted query; resolve it with [`JobHandle::wait`].
pub struct JobHandle {
    rx: Receiver<Result<Served, ServiceError>>,
}

impl JobHandle {
    /// Block until the service answers (or shuts down).
    pub fn wait(self) -> Result<Served, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }
}

/// A multi-threaded proving service over one committed database.
///
/// Dropping the service closes the queue and joins every worker.
pub struct ProvingService {
    shared: Arc<Shared>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ProvingService {
    /// Start the service: commit to `db`, spawn the worker pool.
    pub fn new(params: IpaParams, db: Database, config: ServiceConfig) -> Self {
        let digest = DatabaseCommitment::commit(&params, &db).digest();
        let shape = database_shape(&db);
        let shared = Arc::new(Shared {
            params,
            db,
            shape,
            digest,
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            proofs_generated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        });
        let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                let rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
                std::thread::Builder::new()
                    .name(format!("poneglyph-prover-{i}"))
                    .spawn(move || worker_loop(shared, rx, rng))
                    .expect("spawn prover worker")
            })
            .collect();
        Self {
            shared,
            tx: Some(tx),
            workers,
        }
    }

    /// The committed database's registry digest.
    pub fn digest(&self) -> [u8; 64] {
        self.shared.digest
    }

    /// The shape (schemas + row counts, zeroed values) a verifier needs.
    pub fn shape(&self) -> &Database {
        &self.shared.shape
    }

    /// The service's public parameters.
    pub fn params(&self) -> &IpaParams {
        &self.shared.params
    }

    /// The private database (prover side only).
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// Enqueue a query, blocking while the queue is full.
    pub fn submit(&self, plan: Plan) -> JobHandle {
        let (reply, rx) = sync_channel(1);
        let job = Job { plan, reply };
        if let Some(tx) = &self.tx {
            // A send error means every worker is gone; the handle will
            // resolve to `Shutdown` because the reply sender was dropped.
            let _ = tx.send(job);
        }
        JobHandle { rx }
    }

    /// Enqueue a query, failing fast with [`ServiceError::QueueFull`]
    /// instead of blocking.
    pub fn try_submit(&self, plan: Plan) -> Result<JobHandle, ServiceError> {
        let (reply, rx) = sync_channel(1);
        let job = Job { plan, reply };
        match &self.tx {
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(JobHandle { rx }),
                Err(TrySendError::Full(_)) => Err(ServiceError::QueueFull),
                Err(TrySendError::Disconnected(_)) => Err(ServiceError::Shutdown),
            },
            None => Err(ServiceError::Shutdown),
        }
    }

    /// Submit and wait: the blocking request path.
    pub fn query(&self, plan: Plan) -> Result<Served, ServiceError> {
        self.submit(plan).wait()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            proofs_generated: self.shared.proofs_generated.load(Ordering::SeqCst),
            cache_hits: self.shared.cache_hits.load(Ordering::SeqCst),
            cache_misses: self.shared.cache_misses.load(Ordering::SeqCst),
        }
    }
}

impl Drop for ProvingService {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<Receiver<Job>>>, mut rng: StdRng) {
    loop {
        // Hold the receiver lock only for the dequeue, not the proving.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        let Ok(job) = job else { break };
        let served = serve_one(&shared, &job.plan, &mut rng);
        // The client may have given up; a dead reply channel is fine.
        let _ = job.reply.send(served);
    }
}

/// Answer one query: cache → in-flight dedup → prove.
///
/// The canonical plan is the query's identity: the proof is generated for
/// (and must be verified against) `canonical_plan(plan)`, so that every
/// plan sharing a fingerprint shares one cache entry *and* one circuit.
fn serve_one(shared: &Shared, plan: &Plan, rng: &mut StdRng) -> Result<Served, ServiceError> {
    let plan = canonical_plan(plan);
    let key: CacheKey = (shared.digest, canonical_plan_fingerprint(&plan));

    // Claim the key, or wait for whoever holds it and take their result
    // from the cache. Lock order is inflight → cache throughout.
    {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        loop {
            if let Some(hit) = shared.cache.lock().expect("cache lock").get(&key) {
                shared.cache_hits.fetch_add(1, Ordering::SeqCst);
                return Ok(Served {
                    response: hit,
                    cache_hit: true,
                });
            }
            if inflight.insert(key) {
                break; // claimed: this worker proves
            }
            inflight = shared.inflight_done.wait(inflight).expect("inflight wait");
        }
    }

    shared.cache_misses.fetch_add(1, Ordering::SeqCst);
    shared.proofs_generated.fetch_add(1, Ordering::SeqCst);
    let outcome = prove_query(&shared.params, &shared.db, &plan, rng)
        .map(Arc::new)
        .map_err(|e| ServiceError::Prove(e.to_string()));

    if let Ok(response) = &outcome {
        shared
            .cache
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(response));
    }

    // Release the claim whether proving succeeded or failed, so waiters
    // either hit the cache or retry the proof themselves.
    let mut inflight = shared.inflight.lock().expect("inflight lock");
    inflight.remove(&key);
    shared.inflight_done.notify_all();
    drop(inflight);

    outcome.map(|response| Served {
        response,
        cache_hit: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poneglyph_core::verify_query;
    use poneglyph_sql::{CmpOp, ColumnType, Predicate, Schema, Table};

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let mut t = Table::empty(Schema::new(&[
            ("id", ColumnType::Int),
            ("val", ColumnType::Int),
        ]));
        for (id, val) in [(1, 10), (2, 20), (3, 30), (4, 40)] {
            t.push_row(&[id, val]);
        }
        db.add_table("t", t);
        db
    }

    fn filter_plan(bound: i64) -> Plan {
        Plan::Filter {
            input: Box::new(Plan::Scan { table: "t".into() }),
            predicates: vec![Predicate::ColConst {
                col: 1,
                op: CmpOp::Ge,
                value: bound,
            }],
        }
    }

    #[test]
    fn serves_and_caches() {
        let service = ProvingService::new(
            IpaParams::setup(11),
            tiny_db(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let first = service.query(filter_plan(20)).expect("first");
        assert!(!first.cache_hit);
        let second = service.query(filter_plan(20)).expect("second");
        assert!(second.cache_hit);
        assert_eq!(first.response, second.response);

        let stats = service.stats();
        assert_eq!(stats.proofs_generated, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);

        // The cached response still verifies from public information.
        let verified = verify_query(
            service.params(),
            service.shape(),
            &filter_plan(20),
            &second.response,
        )
        .expect("verify");
        assert_eq!(verified, second.response.result);
    }

    #[test]
    fn semantically_equal_plans_share_a_cache_entry() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        let a = Plan::Filter {
            input: Box::new(Plan::Scan { table: "t".into() }),
            predicates: vec![
                Predicate::ColConst {
                    col: 1,
                    op: CmpOp::Ge,
                    value: 20,
                },
                Predicate::ColConst {
                    col: 0,
                    op: CmpOp::Le,
                    value: 3,
                },
            ],
        };
        let b = Plan::Filter {
            input: Box::new(Plan::Scan { table: "t".into() }),
            predicates: vec![
                Predicate::ColConst {
                    col: 0,
                    op: CmpOp::Le,
                    value: 3,
                },
                Predicate::ColConst {
                    col: 1,
                    op: CmpOp::Ge,
                    value: 20,
                },
            ],
        };
        assert!(!service.query(a.clone()).expect("a").cache_hit);
        let shared = service.query(b.clone()).expect("b");
        assert!(shared.cache_hit);
        assert_eq!(service.stats().proofs_generated, 1);

        // The shared proof is of the canonical plan, so it verifies for
        // *both* submitted spellings of the query via their canonical form.
        for plan in [a, b] {
            let verified = verify_query(
                service.params(),
                service.shape(),
                &canonical_plan(&plan),
                &shared.response,
            )
            .expect("shared proof verifies");
            assert_eq!(verified, shared.response.result);
        }
    }

    #[test]
    fn bad_query_reports_error_not_panic() {
        let service =
            ProvingService::new(IpaParams::setup(11), tiny_db(), ServiceConfig::default());
        let missing = Plan::Scan {
            table: "nope".into(),
        };
        match service.query(missing) {
            Err(ServiceError::Prove(_)) => {}
            other => panic!("expected prove error, got {other:?}"),
        }
        // The failure is not cached; the service keeps running.
        assert_eq!(service.stats().proofs_generated, 1);
        assert!(service.query(filter_plan(20)).is_ok());
    }
}
