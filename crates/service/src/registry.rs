//! The digest-addressed database registry: which committed databases a
//! proving service currently hosts.
//!
//! A real deployment hosts many databases (one per tenant / snapshot), each
//! addressed by its commitment digest — the same 64-byte value published to
//! the immutable commitment registry of §3.3, so a client can name exactly
//! the database state it wants proofs against. Attach/detach are dynamic,
//! and a hosted database may *advance*: an append batch produces a
//! successor entry under a new digest ([`DatabaseRegistry::advance`]),
//! with the lineage's history kept in a per-digest
//! [`DeltaLog`](poneglyph_core::DeltaLog). The first attached database
//! becomes the *default* for the legacy single-database API; the default
//! follows its lineage across mutations.

use poneglyph_core::{DeltaLog, ProverSession};
use poneglyph_sql::{Catalog, Database};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// One hosted database: the prover session (private data + cached proving
/// keys), the public shape, the SQL catalog, and per-database counters.
pub(crate) struct DbEntry {
    /// The commitment digest addressing this database.
    pub digest: [u8; 64],
    /// The prover session (owns the private data and cached keys).
    pub session: ProverSession,
    /// The public shape (schemas + row counts, zeroed values).
    pub shape: Database,
    /// Catalog for server-side SQL planning.
    pub catalog: Catalog,
    /// Proofs generated for this database.
    pub proofs_generated: AtomicU64,
    /// Queries served from the proof cache.
    pub cache_hits: AtomicU64,
    /// Queries that waited for an identical in-flight proof.
    pub inflight_dedups: AtomicU64,
}

/// A digest-addressed set of hosted databases.
///
/// Keys are commitment digests (BTreeMap: deterministic iteration order
/// for `REQ_INFO` listings). One entry may be marked as the default — the
/// target of the legacy single-database request path. Each hosted digest
/// carries the [`DeltaLog`] of its lineage; the log's length is the
/// database's *mutation epoch* (0 for a freshly attached state).
#[derive(Default)]
pub struct DatabaseRegistry {
    entries: BTreeMap<[u8; 64], Arc<DbEntry>>,
    logs: BTreeMap<[u8; 64], DeltaLog>,
    default_digest: Option<[u8; 64]>,
}

impl DatabaseRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of hosted databases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no database is attached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Digests of every hosted database, in digest order.
    pub fn digests(&self) -> Vec<[u8; 64]> {
        self.entries.keys().copied().collect()
    }

    /// The default database's digest (the first attached, unless the
    /// default was detached; follows its lineage across mutations).
    pub fn default_digest(&self) -> Option<[u8; 64]> {
        self.default_digest
    }

    /// The mutation epoch of a hosted digest: how many append batches its
    /// lineage has absorbed (0 for a fresh attach, `None` if not hosted).
    pub fn epoch_of(&self, digest: &[u8; 64]) -> Option<u64> {
        self.entries
            .contains_key(digest)
            .then(|| self.logs.get(digest).map(DeltaLog::epoch).unwrap_or(0))
    }

    /// The delta log of a hosted digest's lineage.
    pub fn log(&self, digest: &[u8; 64]) -> Option<&DeltaLog> {
        self.logs.get(digest)
    }

    pub(crate) fn insert(&mut self, entry: Arc<DbEntry>) -> [u8; 64] {
        let digest = entry.digest;
        // Last attach wins: re-attaching the same committed state swaps in
        // the fresh entry (new catalog/PK metadata), never silently keeps
        // the old one. An existing lineage log for this digest survives.
        self.entries.insert(digest, entry);
        self.logs.entry(digest).or_default();
        if self.default_digest.is_none() {
            self.default_digest = Some(digest);
        }
        digest
    }

    /// Swap `old_digest`'s entry for its mutated successor, carrying the
    /// lineage's delta log (already extended with the applied batch) to
    /// the new digest. The default marker follows the lineage.
    pub(crate) fn advance(&mut self, old_digest: &[u8; 64], entry: Arc<DbEntry>, log: DeltaLog) {
        let new_digest = entry.digest;
        self.entries.remove(old_digest);
        self.logs.remove(old_digest);
        self.entries.insert(new_digest, entry);
        self.logs.insert(new_digest, log);
        if self.default_digest == Some(*old_digest) {
            self.default_digest = Some(new_digest);
        }
    }

    /// Remove the lineage log for `digest`, to extend during a mutation;
    /// pair with [`advance`](Self::advance) (which re-inserts it under
    /// the successor digest).
    pub(crate) fn take_log(&mut self, digest: &[u8; 64]) -> DeltaLog {
        self.logs.remove(digest).unwrap_or_default()
    }

    pub(crate) fn remove(&mut self, digest: &[u8; 64]) -> Option<Arc<DbEntry>> {
        let removed = self.entries.remove(digest)?;
        self.logs.remove(digest);
        if self.default_digest == Some(*digest) {
            // Fall back to the (digest-order) first remaining database.
            self.default_digest = self.entries.keys().next().copied();
        }
        Some(removed)
    }

    pub(crate) fn get(&self, digest: &[u8; 64]) -> Option<Arc<DbEntry>> {
        self.entries.get(digest).cloned()
    }

    pub(crate) fn default_entry(&self) -> Option<Arc<DbEntry>> {
        self.default_digest.and_then(|d| self.get(&d))
    }

    pub(crate) fn entries(&self) -> impl Iterator<Item = &Arc<DbEntry>> {
        self.entries.values()
    }
}

/// Render a digest prefix as hex (error messages, logs).
pub fn digest_hex(digest: &[u8]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}
