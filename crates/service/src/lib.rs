//! # poneglyph-service
//!
//! The serving layer that turns the one-shot
//! [`prove_query`](poneglyph_core::prove_query) /
//! [`verify_query`](poneglyph_core::verify_query) API into the paper's
//! deployment model (Figure 2): a long-lived prover hosting a committed
//! private database and answering a *stream* of client queries with
//! non-interactive zero-knowledge proofs.
//!
//! Three layers, separable and individually testable:
//!
//! * [`ProvingService`] — the engine: a bounded job queue feeding a pool of
//!   prover threads, an LRU proof cache keyed by `(database digest, plan
//!   fingerprint)`, and in-flight deduplication so identical concurrent
//!   queries cost one proof.
//! * [`protocol`] — the versioned frame protocol and payload codecs shared
//!   by server and client.
//! * [`ServiceServer`] / [`ServiceClient`] — a `std::net` TCP front end and
//!   its matching blocking client (no external dependencies).
//!
//! The `poneglyph-serve` binary wraps all three into a runnable daemon.
//!
//! ```no_run
//! use poneglyph_service::{ProvingService, ServiceConfig, ServiceServer, ServiceClient};
//! use poneglyph_pcs::IpaParams;
//! use poneglyph_sql::{Database, Plan};
//! use std::sync::Arc;
//!
//! let params = IpaParams::setup(11);
//! let db = Database::new(); // the prover's private tables
//! let service = Arc::new(ProvingService::new(params.clone(), db, ServiceConfig::default()));
//! let server = ServiceServer::spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
//!
//! let mut client = ServiceClient::connect(server.local_addr()).unwrap();
//! let plan = Plan::Scan { table: "t".into() };
//! let (result, cache_hit) = client.query_verified(&params, &plan).unwrap();
//! ```

#![warn(missing_docs)]

mod cache;
mod client;
pub mod protocol;
mod server;
mod service;

pub use cache::LruCache;
pub use client::{ClientError, ServiceClient, WireResponse};
pub use protocol::{ServerInfo, PROTOCOL_VERSION};
pub use server::ServiceServer;
pub use service::{
    CacheKey, JobHandle, ProvingService, Served, ServiceConfig, ServiceError, ServiceStats,
};
