//! # poneglyph-service
//!
//! The serving layer that turns the session-oriented
//! [`ProverSession`](poneglyph_core::ProverSession) /
//! [`VerifierSession`](poneglyph_core::VerifierSession) API into the
//! paper's deployment model (Figure 2): a long-lived prover hosting a
//! *registry* of committed private databases and answering a stream of
//! client queries — planned or raw SQL — with non-interactive
//! zero-knowledge proofs.
//!
//! Three layers, separable and individually testable:
//!
//! * [`ProvingService`] — the engine: a digest-addressed
//!   [`DatabaseRegistry`] (attach/detach at runtime, plus
//!   [`append_rows`](ProvingService::append_rows): homomorphic
//!   incremental commitment updates with epoch-snapshot retention for
//!   in-flight queries), a bounded job queue feeding a pool of prover
//!   threads, an entry- and byte-bounded LRU proof cache keyed by
//!   `(database digest, plan fingerprint)` with per-database accounting,
//!   and in-flight deduplication so identical concurrent queries cost one
//!   proof.
//! * [`protocol`] — the versioned frame protocol (v4: digest-addressed
//!   queries, SQL-over-the-wire, row appends with epoch advertisement,
//!   metrics snapshots) and payload codecs shared by server and client.
//! * [`ServiceServer`] / [`ServiceClient`] — a `std::net` TCP front end
//!   and its matching blocking client (no external dependencies); the
//!   client verifies through cached per-database verifier sessions.
//!
//! The `poneglyph-serve` binary wraps all three into a runnable daemon.
//!
//! ```no_run
//! use poneglyph_service::{ProvingService, ServiceConfig, ServiceServer, ServiceClient};
//! use poneglyph_pcs::IpaParams;
//! use poneglyph_sql::Database;
//! use std::sync::Arc;
//!
//! let params = IpaParams::setup(11);
//! let service = Arc::new(ProvingService::empty(params.clone(), ServiceConfig::default()));
//! let digest = service.attach(Database::new()); // the prover's private tables
//! let server = ServiceServer::spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
//!
//! let mut client = ServiceClient::connect(server.local_addr()).unwrap();
//! let (result, plan, cache_hit) = client
//!     .query_verified_sql(&params, &digest, "SELECT id FROM t WHERE val >= 20")
//!     .unwrap();
//! ```

#![warn(missing_docs)]

mod cache;
mod client;
pub mod protocol;
mod registry;
mod server;
mod service;

pub use cache::LruCache;
pub use client::{ClientError, ServiceClient, WireResponse, DEFAULT_SESSION_CAPACITY};
pub use poneglyph_core::Parallelism;
pub use protocol::{AppendAck, DatabaseInfo, ServerInfo, MAX_APPEND_CELLS, PROTOCOL_VERSION};
pub use registry::{digest_hex, DatabaseRegistry};
pub use server::{server_info, ServiceServer};
pub use service::{
    CacheKey, DatabaseSnapshot, DatabaseStats, JobHandle, MutationStats, ProvingService, Served,
    ServiceConfig, ServiceError, ServiceStats,
};
