//! A blocking TCP client for the proving service.
//!
//! One [`ServiceClient`] owns one connection and may issue any number of
//! sequential requests. The client only *transports* responses; callers
//! establish trust by running
//! [`verify_query`](poneglyph_core::verify_query) against the shape from
//! [`ServiceClient::info`] (see [`ServiceClient::query_verified`]).

use crate::protocol::{
    read_frame, write_frame, ServerInfo, REQ_INFO, REQ_QUERY, RESP_ERR, RESP_INFO, RESP_QUERY,
};
use poneglyph_core::{verify_query, QueryResponse};
use poneglyph_pcs::IpaParams;
use poneglyph_sql::{canonical_plan, plan_to_bytes, Database, Plan, Table, WireError};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with an error message.
    Server(String),
    /// The server broke the framing protocol.
    Protocol(String),
    /// The response decoded but did not verify.
    Verify(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A proof served over the wire, with its transport metadata.
#[derive(Debug)]
pub struct WireResponse {
    /// The decoded response (still unverified).
    pub response: QueryResponse,
    /// True when the server answered from its proof cache.
    pub cache_hit: bool,
}

/// One blocking connection to a [`ServiceServer`](crate::ServiceServer).
pub struct ServiceClient {
    stream: TcpStream,
    /// Server facts + rebuilt shape, fetched once per connection: the
    /// digest and table shapes are immutable for the service's lifetime.
    cached_info: Option<(ServerInfo, Database)>,
}

impl ServiceClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            cached_info: None,
        })
    }

    fn request(&mut self, msg_type: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        write_frame(&mut self.stream, msg_type, payload)?;
        match read_frame(&mut self.stream)? {
            Some((RESP_ERR, body)) => Err(ClientError::Server(
                String::from_utf8_lossy(&body).into_owned(),
            )),
            Some(frame) => Ok(frame),
            None => Err(ClientError::Protocol(
                "connection closed before response".into(),
            )),
        }
    }

    /// Fetch the server's public facts (digest, parameters, table shapes).
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        let (ty, body) = self.request(REQ_INFO, &[])?;
        if ty != RESP_INFO {
            return Err(ClientError::Protocol(format!(
                "expected info response, got tag {ty:#04x}"
            )));
        }
        Ok(ServerInfo::from_bytes(&body)?)
    }

    /// Ask the server to prove a plan; returns the decoded (unverified)
    /// response.
    pub fn query(&mut self, plan: &Plan) -> Result<WireResponse, ClientError> {
        let (ty, body) = self.request(REQ_QUERY, &plan_to_bytes(plan))?;
        if ty != RESP_QUERY {
            return Err(ClientError::Protocol(format!(
                "expected query response, got tag {ty:#04x}"
            )));
        }
        let (&hit, rest) = body
            .split_first()
            .ok_or_else(|| ClientError::Protocol("empty query response".into()))?;
        let response = QueryResponse::from_bytes(rest)?;
        Ok(WireResponse {
            response,
            cache_hit: hit != 0,
        })
    }

    /// The full trusting-client path: query, then verify against the
    /// server-advertised shape. Returns the verified result table and
    /// whether the proof came from the cache.
    ///
    /// `params` must be (a prefix-compatible copy of) the server's public
    /// parameters — they are publicly derivable, so clients run
    /// [`IpaParams::setup`] themselves rather than trusting served bytes.
    ///
    /// Verification runs against [`canonical_plan`]`(plan)` because that
    /// is the form the server proves (it is also the form shipped on the
    /// wire); the result is semantically identical to the submitted plan's.
    /// The server's info (and the shape database rebuilt from it) is
    /// fetched once and reused for the life of the connection.
    pub fn query_verified(
        &mut self,
        params: &IpaParams,
        plan: &Plan,
    ) -> Result<(Table, bool), ClientError> {
        if self.cached_info.is_none() {
            let info = self.info()?;
            let shape = info.shape_database();
            self.cached_info = Some((info, shape));
        }
        let wire = self.query(plan)?;
        let (_, shape) = self.cached_info.as_ref().expect("info cached above");
        let table = verify_query(params, shape, &canonical_plan(plan), &wire.response)
            .map_err(|e| ClientError::Verify(e.to_string()))?;
        Ok((table, wire.cache_hit))
    }
}
