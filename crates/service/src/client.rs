//! A blocking TCP client for the proving service.
//!
//! One [`ServiceClient`] owns one connection and may issue any number of
//! sequential requests. The client *transports* responses and — for the
//! `*_verified` paths — checks them against an internal per-database
//! [`VerifierSession`], so verifying a stream of responses compiles and
//! keys each query circuit once.

use crate::cache::LruCache;
use crate::protocol::{
    encode_append_request, encode_sql_request, read_frame, write_frame, AppendAck, ServerInfo,
    REQ_APPEND, REQ_INFO, REQ_METRICS, REQ_QUERY, REQ_QUERY_DB, REQ_SQL, RESP_APPEND, RESP_ERR,
    RESP_INFO, RESP_METRICS, RESP_QUERY, RESP_SQL,
};
use crate::registry::digest_hex;
use poneglyph_core::{QueryResponse, SessionStats, VerifierSession};
use poneglyph_pcs::IpaParams;
use poneglyph_sql::{plan_from_bytes, plan_to_bytes, Plan, Table, WireError};
use std::collections::HashSet;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Default bound on a client's per-digest verifier-session map. Mutations
/// mint a new digest per append, so an unbounded map would leak one
/// compiled-circuit cache per superseded state; the LRU keeps the hot
/// lineages and re-derives anything evicted from `REQ_INFO`.
pub const DEFAULT_SESSION_CAPACITY: usize = 16;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with an error message.
    Server(String),
    /// The server broke the framing protocol.
    Protocol(String),
    /// The response decoded but did not verify.
    Verify(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClientError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A proof served over the wire, with its transport metadata.
#[derive(Debug)]
pub struct WireResponse {
    /// The decoded response (still unverified).
    pub response: QueryResponse,
    /// True when the server answered from its proof cache.
    pub cache_hit: bool,
}

/// One blocking connection to a [`ServiceServer`](crate::ServiceServer).
pub struct ServiceClient {
    stream: TcpStream,
    /// Server facts, fetched lazily: digests and table shapes are
    /// immutable for a hosted database's lifetime (counters go stale — use
    /// [`info`](Self::info) for a fresh snapshot).
    cached_info: Option<ServerInfo>,
    /// One verifier session per database digest: cached compiled circuits
    /// and verifying keys survive across queries on this connection.
    /// LRU-bounded ([`DEFAULT_SESSION_CAPACITY`]) so digest churn from
    /// server-side mutations cannot grow it without bound.
    sessions: LruCache<[u8; 64], Arc<VerifierSession>>,
}

impl ServiceClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with_session_capacity(addr, DEFAULT_SESSION_CAPACITY)
    }

    /// [`connect`](Self::connect) with an explicit bound on the
    /// per-digest verifier-session map.
    pub fn connect_with_session_capacity(
        addr: impl ToSocketAddrs,
        capacity: usize,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            cached_info: None,
            sessions: LruCache::new(capacity),
        })
    }

    fn request(&mut self, msg_type: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        write_frame(&mut self.stream, msg_type, payload)?;
        match read_frame(&mut self.stream)? {
            Some((RESP_ERR, body)) => Err(ClientError::Server(
                String::from_utf8_lossy(&body).into_owned(),
            )),
            Some(frame) => Ok(frame),
            None => Err(ClientError::Protocol(
                "connection closed before response".into(),
            )),
        }
    }

    /// Fetch a fresh snapshot of the server's public facts (hosted
    /// databases, shapes, per-database counters).
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        let (ty, body) = self.request(REQ_INFO, &[])?;
        if ty != RESP_INFO {
            return Err(ClientError::Protocol(format!(
                "expected info response, got tag {ty:#04x}"
            )));
        }
        let info = ServerInfo::from_bytes(&body)?;
        self.cached_info = Some(info.clone());
        Ok(info)
    }

    /// Fetch the server's metrics snapshot (protocol v4): the registry
    /// rendered in the Prometheus text exposition format — identical to
    /// what the server's `GET /metrics` HTTP endpoint serves.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let (ty, body) = self.request(REQ_METRICS, &[])?;
        if ty != RESP_METRICS {
            return Err(ClientError::Protocol(format!(
                "expected metrics response, got tag {ty:#04x}"
            )));
        }
        String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("metrics snapshot is not UTF-8".into()))
    }

    /// The cached info, fetching it once if needed.
    fn ensure_info(&mut self) -> Result<&ServerInfo, ClientError> {
        if self.cached_info.is_none() {
            self.info()?;
        }
        Ok(self.cached_info.as_ref().expect("info cached above"))
    }

    /// The verifier session for one hosted database, creating it from the
    /// server-advertised shape on first use (and refreshing the info
    /// snapshot once when the digest is unknown — it may be a mutation
    /// successor attached after the cached snapshot).
    fn session_for(
        &mut self,
        params: &IpaParams,
        digest: &[u8; 64],
    ) -> Result<Arc<VerifierSession>, ClientError> {
        if let Some(session) = self.sessions.get(digest) {
            return Ok(session);
        }
        let info = self.ensure_info()?;
        let shape = match info.database(digest) {
            Some(db) => db.shape_database(),
            None => {
                // The database may have been attached — or appended to —
                // after our cached snapshot; refresh once before giving up.
                let fresh = self.info()?;
                fresh
                    .database(digest)
                    .ok_or_else(|| {
                        ClientError::Server(format!(
                            "server does not host database {}",
                            digest_hex(&digest[..16])
                        ))
                    })?
                    .shape_database()
            }
        };
        let session = Arc::new(VerifierSession::new(params.clone(), shape));
        self.sessions.insert(*digest, Arc::clone(&session));
        Ok(session)
    }

    /// Work counters of the internal verifier session for `digest`
    /// (compiles / keygens / key-cache hits), if one exists yet.
    pub fn verifier_stats(&self, digest: &[u8; 64]) -> Option<SessionStats> {
        self.sessions.peek(digest).map(|s| s.stats())
    }

    /// Number of per-digest verifier sessions currently held.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Drop verifier sessions for digests the server no longer hosts
    /// (superseded by mutation, or detached), based on a fresh
    /// [`info`](Self::info) snapshot — each advertised database carries
    /// its lineage's mutation epoch, so a digest that disappeared has
    /// been superseded. Returns how many sessions were dropped.
    pub fn prune_stale_sessions(&mut self) -> Result<usize, ClientError> {
        let info = self.info()?;
        let live: HashSet<[u8; 64]> = info.databases.iter().map(|d| d.digest).collect();
        let before = self.sessions.len();
        self.sessions.retain(|digest, _| live.contains(digest));
        Ok(before - self.sessions.len())
    }

    fn decode_query_response(body: Vec<u8>) -> Result<WireResponse, ClientError> {
        let (&hit, rest) = body
            .split_first()
            .ok_or_else(|| ClientError::Protocol("empty query response".into()))?;
        let response = QueryResponse::from_bytes(rest)?;
        Ok(WireResponse {
            response,
            cache_hit: hit != 0,
        })
    }

    /// Ask the server to prove a plan against its *default* database
    /// (legacy v1 request); returns the decoded (unverified) response.
    #[deprecated(
        since = "0.2.0",
        note = "name the target database: use `query_on` (or `query_sql` for SQL text)"
    )]
    pub fn query(&mut self, plan: &Plan) -> Result<WireResponse, ClientError> {
        let (ty, body) = self.request(REQ_QUERY, &plan_to_bytes(plan))?;
        if ty != RESP_QUERY {
            return Err(ClientError::Protocol(format!(
                "expected query response, got tag {ty:#04x}"
            )));
        }
        Self::decode_query_response(body)
    }

    /// Ask the server to prove a plan against the database addressed by
    /// `digest`; returns the decoded (unverified) response.
    pub fn query_on(
        &mut self,
        digest: &[u8; 64],
        plan: &Plan,
    ) -> Result<WireResponse, ClientError> {
        let mut payload = Vec::with_capacity(64 + 128);
        payload.extend_from_slice(digest);
        payload.extend_from_slice(&plan_to_bytes(plan));
        let (ty, body) = self.request(REQ_QUERY_DB, &payload)?;
        if ty != RESP_QUERY {
            return Err(ClientError::Protocol(format!(
                "expected query response, got tag {ty:#04x}"
            )));
        }
        Self::decode_query_response(body)
    }

    /// Send SQL text to be planned and proven server-side against the
    /// database addressed by `digest`. Returns the canonical plan the
    /// server proved (inspect it — it *is* the proven statement) and the
    /// decoded (unverified) response.
    pub fn query_sql(
        &mut self,
        digest: &[u8; 64],
        sql: &str,
    ) -> Result<(Plan, WireResponse), ClientError> {
        let (ty, body) = self.request(REQ_SQL, &encode_sql_request(digest, sql))?;
        if ty != RESP_SQL {
            return Err(ClientError::Protocol(format!(
                "expected SQL response, got tag {ty:#04x}"
            )));
        }
        let (&hit, rest) = body
            .split_first()
            .ok_or_else(|| ClientError::Protocol("empty SQL response".into()))?;
        if rest.len() < 4 {
            return Err(ClientError::Protocol("truncated SQL response".into()));
        }
        let plan_len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let rest = &rest[4..];
        if rest.len() < plan_len {
            return Err(ClientError::Protocol("truncated plan echo".into()));
        }
        let plan = plan_from_bytes(&rest[..plan_len])?;
        let response = QueryResponse::from_bytes(&rest[plan_len..])?;
        Ok((
            plan,
            WireResponse {
                response,
                cache_hit: hit != 0,
            },
        ))
    }

    /// Append rows to the database addressed by `digest` (protocol v3).
    ///
    /// On success the server has swapped in the successor state: the
    /// returned [`AppendAck`] carries the **new digest** (the target for
    /// follow-up queries) and the lineage's mutation epoch. The old
    /// digest's verifier session and the cached info snapshot are dropped
    /// locally — both describe a superseded committed state.
    pub fn append_rows(
        &mut self,
        digest: &[u8; 64],
        table: &str,
        rows: &[Vec<i64>],
    ) -> Result<AppendAck, ClientError> {
        let payload = encode_append_request(digest, table, rows)?;
        let (ty, body) = self.request(REQ_APPEND, &payload)?;
        if ty != RESP_APPEND {
            return Err(ClientError::Protocol(format!(
                "expected append ack, got tag {ty:#04x}"
            )));
        }
        let ack = AppendAck::from_bytes(&body)?;
        if ack.new_digest != *digest {
            self.sessions.remove(digest);
            self.cached_info = None;
        }
        Ok(ack)
    }

    /// Query the database addressed by `digest` and verify the response
    /// with this connection's cached verifier session. Returns the
    /// verified result table and whether the proof came from the server's
    /// cache.
    ///
    /// `params` must be (a prefix-compatible copy of) the server's public
    /// parameters — they are publicly derivable, so clients run
    /// [`IpaParams::setup`] themselves rather than trusting served bytes.
    pub fn query_verified_on(
        &mut self,
        params: &IpaParams,
        digest: &[u8; 64],
        plan: &Plan,
    ) -> Result<(Table, bool), ClientError> {
        let wire = self.query_on(digest, plan)?;
        let session = self.session_for(params, digest)?;
        let table = session
            .verify(plan, &wire.response)
            .map_err(|e| ClientError::Verify(e.to_string()))?;
        Ok((table, wire.cache_hit))
    }

    /// Send SQL text, then verify the response against the plan the server
    /// echoed. Returns the verified result table, the canonical plan that
    /// was proven, and whether the proof came from the server's cache.
    ///
    /// Trust model: the proof binds the result to the *echoed plan* over
    /// the committed database shape. The client should inspect (or
    /// re-derive) that plan — the server could plan the SQL differently
    /// than the client meant, but it cannot fake the plan↔result binding.
    pub fn query_verified_sql(
        &mut self,
        params: &IpaParams,
        digest: &[u8; 64],
        sql: &str,
    ) -> Result<(Table, Plan, bool), ClientError> {
        let (plan, wire) = self.query_sql(digest, sql)?;
        let session = self.session_for(params, digest)?;
        let table = session
            .verify(&plan, &wire.response)
            .map_err(|e| ClientError::Verify(e.to_string()))?;
        Ok((table, plan, wire.cache_hit))
    }

    /// The legacy v1 trusting-client path: query the server's *current*
    /// default database, then verify against its advertised shape.
    ///
    /// The default digest is re-resolved and then **pinned** per call (the
    /// request goes out digest-addressed): with a mutable registry, a bare
    /// default-database request could otherwise be proven against a
    /// different committed state than the one verified against.
    #[deprecated(
        since = "0.2.0",
        note = "name the target database: use `query_verified_on` / `query_verified_sql`"
    )]
    pub fn query_verified(
        &mut self,
        params: &IpaParams,
        plan: &Plan,
    ) -> Result<(Table, bool), ClientError> {
        let default = self
            .info()? // fresh: the default can move as databases attach/detach
            .default_digest
            .ok_or_else(|| ClientError::Server("server hosts no default database".into()))?;
        self.query_verified_on(params, &default, plan)
    }
}
