//! # PoneglyphDB
//!
//! A from-scratch Rust reproduction of **PoneglyphDB: Efficient
//! Non-interactive Zero-Knowledge Proofs for Arbitrary SQL-Query
//! Verification** (SIGMOD 2025).
//!
//! A *prover* hosting a private database answers SQL queries with
//! non-interactive zero-knowledge proofs: the *verifier* learns the result
//! (and anything implied by it) and nothing else, while being convinced the
//! result is the correct evaluation of the query over a previously
//! committed database.
//!
//! The facade re-exports the full stack:
//!
//! * [`obs`] — bottom-of-stack observability (metrics registry, span
//!   tracing, slow-query ring, leveled logging, `/metrics` HTTP responder)
//! * [`arith`] — Pasta prime fields (254-bit, FFT-friendly)
//! * [`par`] — scoped-thread parallelism primitives and the per-proof
//!   thread budget ([`Parallelism`](par::Parallelism))
//! * [`curve`] — Pallas group + Pippenger MSM
//! * [`hash`] — BLAKE2b + Fiat–Shamir transcript
//! * [`poly`] — polynomials, FFTs, evaluation domains
//! * [`pcs`] — IPA polynomial commitments (no trusted setup)
//! * [`plonkish`] — the PLONKish proving system (gates, lookups, shuffles,
//!   copy constraints)
//! * [`core`] — the paper's SQL gates, query compiler and prover/verifier
//!   API
//! * [`sql`] — SQL parser, planner and witness-generating executor
//! * [`tpch`] — the evaluation workload (scaled dbgen + Q1/Q3/Q5/Q8/Q9/Q18)
//! * [`baselines`] — ZKSQL-style interactive proving and Libra-style GKR
//! * [`service`] — the long-lived proving service (job queue, proof cache,
//!   TCP wire protocol)
//! * [`analyze`] — static circuit-soundness analysis and the workspace
//!   source linter (the `analyze` and `srclint` binaries)

pub use poneglyph_analyze as analyze;
pub use poneglyph_arith as arith;
pub use poneglyph_baselines as baselines;
pub use poneglyph_core as core;
pub use poneglyph_curve as curve;
pub use poneglyph_hash as hash;
pub use poneglyph_obs as obs;
pub use poneglyph_par as par;
pub use poneglyph_pcs as pcs;
pub use poneglyph_plonkish as plonkish;
pub use poneglyph_poly as poly;
pub use poneglyph_service as service;
pub use poneglyph_sql as sql;
pub use poneglyph_tpch as tpch;

/// The most common imports for applications.
pub mod prelude {
    pub use poneglyph_core::{
        apply_append, check_query, database_shape, AppliedDelta, CommitmentRegistry,
        DatabaseCommitment, DeltaLog, MutationError, Parallelism, ProverSession, QueryResponse,
        RowBatch, SessionStats, VerifierSession,
    };
    #[allow(deprecated)] // one-shot wrappers: kept importable through 0.2
    pub use poneglyph_core::{prove_query, verify_query};
    pub use poneglyph_pcs::IpaParams;
    pub use poneglyph_service::{ProvingService, ServiceClient, ServiceConfig, ServiceServer};
    pub use poneglyph_sql::{
        catalog_of, execute, parse, plan_fingerprint, plan_query, Catalog, Database, Plan, Table,
    };
}
